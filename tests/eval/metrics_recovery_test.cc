// Recoverable-error contract of eval/metrics (ISSUE 4): data-dependent
// invalid inputs — empty tensors from a degenerate partition, mismatched
// shapes from a faulted stage, out-of-domain RMSLE targets — must yield a
// Status / NaN, never kill the harness process.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace tasfar {
namespace {

class MetricsRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::Disable();
    obs::SetMetricsEnabled(false);
  }
};

TEST_F(MetricsRecoveryTest, EmptyInputReturnsInvalidArgument) {
  Tensor p({0, 2});
  Tensor t({0, 2});
  const Result<double> r = metrics::TryMse(p, t);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(std::isnan(metrics::Mse(p, t)));
  EXPECT_TRUE(std::isnan(metrics::Rmse(p, t)));
  EXPECT_TRUE(std::isnan(metrics::Mae(p, t)));
  EXPECT_TRUE(std::isnan(metrics::Ste(p, t)));
  EXPECT_TRUE(std::isnan(metrics::Rte(p, t)));
  EXPECT_TRUE(metrics::PerSampleL2Error(p, t).empty());
}

TEST_F(MetricsRecoveryTest, ShapeMismatchReturnsInvalidArgument) {
  Tensor p({2, 1});
  Tensor t({2, 2});
  EXPECT_EQ(metrics::TryMae(p, t).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(std::isnan(metrics::Mae(p, t)));
}

TEST_F(MetricsRecoveryTest, RankOneTensorReturnsInvalidArgument) {
  Tensor p({4});
  Tensor t({4});
  EXPECT_EQ(metrics::TryRmse(p, t).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MetricsRecoveryTest, RmsleOutOfDomainTargetIsRecoverable) {
  Tensor p({2, 1}, {1.0, 1.0});
  Tensor t({2, 1}, {1.0, -2.0});
  const Result<double> r = metrics::TryRmsle(p, t);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(std::isnan(metrics::Rmsle(p, t)));
  // The boundary itself (-1, where log1p diverges) is also rejected.
  Tensor t_edge({1, 1}, {-1.0});
  Tensor p_edge({1, 1}, {0.0});
  EXPECT_FALSE(metrics::TryRmsle(p_edge, t_edge).ok());
}

TEST_F(MetricsRecoveryTest, ValidInputsUnchangedByTryVariants) {
  Tensor p({2, 1}, {1.0, 3.0});
  Tensor t({2, 1}, {0.0, 0.0});
  const Result<double> r = metrics::TryMse(p, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), metrics::Mse(p, t));
  EXPECT_DOUBLE_EQ(r.value(), 5.0);
}

TEST_F(MetricsRecoveryTest, InvalidInputIncrementsGuardCounter) {
  obs::SetMetricsEnabled(true);
  obs::Counter* const counter =
      obs::Registry::Get().GetCounter("tasfar.guard.metrics_invalid");
  const uint64_t before = counter->value();
  Tensor p({0, 1});
  Tensor t({0, 1});
  EXPECT_TRUE(std::isnan(metrics::Mse(p, t)));
  EXPECT_EQ(counter->value(), before + 1);
}

TEST_F(MetricsRecoveryTest, InjectedMetricFaultDegradesToNaN) {
  ASSERT_TRUE(failpoint::Configure("eval.metric.poison").ok());
  Tensor p({2, 1}, {1.0, 2.0});
  Tensor t({2, 1}, {1.0, 2.0});
  const Result<double> r = metrics::TryMse(p, t);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(std::isnan(metrics::Rmse(p, t)));
  failpoint::Disable();
  EXPECT_DOUBLE_EQ(metrics::Mse(p, t), 0.0);
}

}  // namespace
}  // namespace tasfar
