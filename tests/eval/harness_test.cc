#include <gtest/gtest.h>

#include <cmath>

#include "data/crowd_sim.h"
#include "data/housing_sim.h"
#include "data/pdr_sim.h"
#include "eval/crowd_harness.h"
#include "eval/pdr_harness.h"
#include "eval/tabular_harness.h"
#include "util/rng.h"

namespace tasfar {
namespace {

TEST(HarnessTest, PoolTrajectoriesConcatenatesSteps) {
  PdrSimConfig cfg;
  cfg.num_seen_users = 1;
  cfg.num_unseen_users = 0;
  PdrSimulator sim(cfg, 3);
  Rng rng(5);
  std::vector<PdrTrajectory> trajs;
  trajs.push_back(sim.SimulateTrajectory(sim.seen_profiles()[0], 7, &rng));
  trajs.push_back(sim.SimulateTrajectory(sim.seen_profiles()[0], 5, &rng));
  Dataset pooled = PdrHarness::PoolTrajectories(trajs);
  EXPECT_EQ(pooled.size(), 12u);
  EXPECT_EQ(pooled.inputs.dim(1), 6u);
  // The pooled windows preserve per-step data byte-for-byte.
  EXPECT_DOUBLE_EQ(pooled.targets.At(0, 0),
                   trajs[0].steps.targets.At(0, 0));
  EXPECT_DOUBLE_EQ(pooled.targets.At(7, 1),
                   trajs[1].steps.targets.At(0, 1));
}

TEST(HarnessTest, CutLayersPointInsideTheModels) {
  Rng rng(7);
  auto pdr = BuildPdrModel(20, &rng);
  EXPECT_GT(PdrModelCutLayer(), 0u);
  EXPECT_LT(PdrModelCutLayer(), pdr->NumLayers());
  auto crowd = BuildCrowdModel(16, &rng);
  EXPECT_GT(CrowdModelCutLayer(), 0u);
  EXPECT_LT(CrowdModelCutLayer(), crowd->NumLayers());
  auto tabular = BuildTabularModel(8, &rng);
  EXPECT_GT(TabularModelCutLayer(), 0u);
  EXPECT_LT(TabularModelCutLayer(), tabular->NumLayers());
}

TEST(HarnessTest, CutLayerFeaturesAreRank2) {
  // The alignment baselines require {batch, features} activations at the
  // cut; verify for each task model.
  Rng rng(11);
  auto pdr = BuildPdrModel(20, &rng);
  Tensor pdr_feat = pdr->ForwardTo(Tensor::RandomNormal({2, 6, 20}, &rng),
                                   PdrModelCutLayer(), false);
  EXPECT_EQ(pdr_feat.rank(), 2u);
  auto crowd = BuildCrowdModel(16, &rng);
  Tensor crowd_feat = crowd->ForwardTo(
      Tensor::RandomNormal({2, 1, 16, 16}, &rng), CrowdModelCutLayer(),
      false);
  EXPECT_EQ(crowd_feat.rank(), 2u);
  auto tabular = BuildTabularModel(8, &rng);
  Tensor tab_feat = tabular->ForwardTo(Tensor::RandomNormal({2, 8}, &rng),
                                       TabularModelCutLayer(), false);
  EXPECT_EQ(tab_feat.rank(), 2u);
}

TEST(HarnessTest, TabularHarnessStandardizesLabels) {
  HousingSimConfig sim_cfg;
  sim_cfg.source_samples = 400;
  sim_cfg.target_samples = 200;
  HousingSimulator sim(sim_cfg, 13);
  TabularHarnessConfig cfg;
  cfg.source_epochs = 2;
  cfg.tasfar.mc_samples = 3;
  TabularHarness harness(cfg, sim.GenerateSource(), sim.GenerateTarget());
  harness.Prepare();
  EXPECT_GT(harness.label_std(), 0.0);
  // The stored adaptation targets live in standardized space: roughly
  // zero-mean on the source scale (coastal prices sit above, so the mean
  // is positive but O(1)).
  double mean = harness.target_adapt().targets.Mean();
  EXPECT_LT(std::fabs(mean), 5.0);
}

TEST(HarnessTest, CrowdToCountsInvertsLogTraining) {
  CrowdHarnessConfig cfg;
  cfg.sim.image_size = 16;
  cfg.sim.part_a_images = 20;
  cfg.sim.part_b_images = 30;
  cfg.source_epochs = 1;
  cfg.tasfar.mc_samples = 3;
  CrowdHarness harness(cfg);
  harness.Prepare();
  Tensor log_out({2, 1}, {std::log1p(10.0), std::log1p(50.0)});
  Tensor counts = harness.ToCounts(log_out);
  EXPECT_NEAR(counts.At(0, 0), 10.0, 1e-9);
  EXPECT_NEAR(counts.At(1, 0), 50.0, 1e-9);
}

TEST(HarnessTest, CrowdToCountsClampsNegative) {
  CrowdHarnessConfig cfg;
  cfg.sim.image_size = 16;
  cfg.sim.part_a_images = 20;
  cfg.sim.part_b_images = 30;
  cfg.source_epochs = 1;
  cfg.tasfar.mc_samples = 3;
  CrowdHarness harness(cfg);
  harness.Prepare();
  Tensor log_out({1, 1}, {-3.0});
  EXPECT_DOUBLE_EQ(harness.ToCounts(log_out).At(0, 0), 0.0);
}

}  // namespace
}  // namespace tasfar
