#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tasfar {
namespace {

TEST(MetricsTest, MseMeanOverSamples) {
  Tensor p({2, 1}, {1.0, 3.0});
  Tensor t({2, 1}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(metrics::Mse(p, t), 5.0);
}

TEST(MetricsTest, MseSumsOverDims) {
  Tensor p({1, 2}, {1.0, 2.0});
  Tensor t({1, 2}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(metrics::Mse(p, t), 5.0);
}

TEST(MetricsTest, MaeMeansOverAllEntries) {
  Tensor p({2, 2}, {1.0, -1.0, 2.0, -2.0});
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_DOUBLE_EQ(metrics::Mae(p, t), 1.5);
}

TEST(MetricsTest, RmseIsSqrtOfPerEntryMse) {
  Tensor p({2, 1}, {3.0, 4.0});
  Tensor t = Tensor::Zeros({2, 1});
  EXPECT_DOUBLE_EQ(metrics::Rmse(p, t), std::sqrt(12.5));
}

TEST(MetricsTest, RmsleKnownValue) {
  Tensor p({1, 1}, {std::exp(1.0) - 1.0});
  Tensor t({1, 1}, {0.0});
  EXPECT_NEAR(metrics::Rmsle(p, t), 1.0, 1e-12);
}

TEST(MetricsTest, RmsleClampsNegativePredictions) {
  Tensor p({1, 1}, {-5.0});
  Tensor t({1, 1}, {0.0});
  EXPECT_DOUBLE_EQ(metrics::Rmsle(p, t), 0.0);
}

TEST(MetricsTest, RmsleScaleInvariantIntuition) {
  // Equal ratios give equal RMSLE regardless of magnitude.
  Tensor p1({1, 1}, {2.0});
  Tensor t1({1, 1}, {1.0});
  Tensor t2({1, 1}, {100.0});
  // log1p(p2) - log1p(100) = log(1.5) requires 1 + p2 = 1.5 * 101.
  Tensor p2({1, 1}, {1.5 * 101.0 - 1.0});
  EXPECT_NEAR(metrics::Rmsle(p1, t1), metrics::Rmsle(p2, t2), 1e-12);
}

TEST(MetricsTest, PerSampleL2Error) {
  Tensor p({2, 2}, {3.0, 4.0, 0.0, 0.0});
  Tensor t = Tensor::Zeros({2, 2});
  std::vector<double> errors = metrics::PerSampleL2Error(p, t);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_DOUBLE_EQ(errors[0], 5.0);
  EXPECT_DOUBLE_EQ(errors[1], 0.0);
}

TEST(MetricsTest, SteIsMeanPerStepError) {
  Tensor p({2, 2}, {3.0, 4.0, 0.0, 1.0});
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_DOUBLE_EQ(metrics::Ste(p, t), 3.0);
}

TEST(MetricsTest, RteMeasuresEndpointError) {
  // Per-step errors cancel: the integrated endpoint matches.
  Tensor p({2, 2}, {1.0, 0.0, -1.0, 0.0});
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_DOUBLE_EQ(metrics::Rte(p, t), 0.0);
  EXPECT_GT(metrics::Ste(p, t), 0.0);
}

TEST(MetricsTest, RteAccumulatesBias) {
  Tensor p({3, 2}, {1.0, 0.0, 1.0, 0.0, 1.0, 0.0});
  Tensor t = Tensor::Zeros({3, 2});
  EXPECT_DOUBLE_EQ(metrics::Rte(p, t), 3.0);
}

TEST(MetricsTest, ReductionPercent) {
  EXPECT_DOUBLE_EQ(metrics::ReductionPercent(10.0, 8.0), 20.0);
  EXPECT_DOUBLE_EQ(metrics::ReductionPercent(10.0, 12.0), -20.0);
  EXPECT_DOUBLE_EQ(metrics::ReductionPercent(0.0, 5.0), 0.0);
}

TEST(MetricsTest, ShapeMismatchIsRecoverable) {
  // Degraded pipelines can hand a harness mismatched tensors; that must
  // poison the metric value, not the process (see metrics_recovery_test.cc
  // for the full recoverable-error matrix).
  Tensor p({2, 1});
  Tensor t({2, 2});
  EXPECT_TRUE(std::isnan(metrics::Mse(p, t)));
}

}  // namespace
}  // namespace tasfar
