#include "nn/gradient_check.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/multi_column.h"
#include "util/rng.h"

namespace tasfar {
namespace {

LossFn MseLoss() {
  return [](const Tensor& p, const Tensor& t, Tensor* g,
            const std::vector<double>* w) { return loss::Mse(p, t, g, w); };
}

LossFn HuberLoss() {
  return [](const Tensor& p, const Tensor& t, Tensor* g,
            const std::vector<double>* w) {
    return loss::Huber(p, t, 1.0, g, w);
  };
}

TEST(GradientCheckTest, DenseMlp) {
  Rng rng(1);
  Sequential model;
  model.Emplace<Dense>(3, 5, &rng);
  model.Emplace<Tanh>();
  model.Emplace<Dense>(5, 2, &rng);
  Tensor x = Tensor::RandomNormal({4, 3}, &rng);
  Tensor y = Tensor::RandomNormal({4, 2}, &rng);
  GradCheckResult result = CheckGradients(&model, x, y, MseLoss());
  EXPECT_GT(result.checked, 0u);
  EXPECT_LT(result.max_rel_error, 1e-4);
}

TEST(GradientCheckTest, DenseWithSigmoid) {
  Rng rng(2);
  Sequential model;
  model.Emplace<Dense>(2, 4, &rng);
  model.Emplace<Sigmoid>();
  model.Emplace<Dense>(4, 1, &rng);
  Tensor x = Tensor::RandomNormal({3, 2}, &rng);
  Tensor y = Tensor::RandomNormal({3, 1}, &rng);
  EXPECT_LT(CheckGradients(&model, x, y, MseLoss()).max_rel_error, 1e-4);
}

TEST(GradientCheckTest, Conv1dChain) {
  Rng rng(3);
  Sequential model;
  model.Emplace<Conv1d>(2, 3, 3, &rng, 1, 1);
  model.Emplace<Tanh>();
  model.Emplace<Conv1d>(3, 2, 3, &rng, 1, 2, /*dilation=*/2);
  model.Emplace<Flatten>();
  model.Emplace<Dense>(2 * 8, 2, &rng);
  Tensor x = Tensor::RandomNormal({2, 2, 8}, &rng);
  Tensor y = Tensor::RandomNormal({2, 2}, &rng);
  EXPECT_LT(CheckGradients(&model, x, y, MseLoss()).max_rel_error, 1e-4);
}

TEST(GradientCheckTest, Conv2dChainWithPooling) {
  Rng rng(4);
  Sequential model;
  model.Emplace<Conv2d>(1, 2, 3, &rng, 1, 1);
  model.Emplace<Tanh>();
  model.Emplace<MaxPool2d>(2);
  model.Emplace<Flatten>();
  model.Emplace<Dense>(2 * 2 * 2, 1, &rng);
  Tensor x = Tensor::RandomNormal({2, 1, 4, 4}, &rng);
  Tensor y = Tensor::RandomNormal({2, 1}, &rng);
  EXPECT_LT(CheckGradients(&model, x, y, MseLoss()).max_rel_error, 1e-4);
}

TEST(GradientCheckTest, GlobalAvgPoolChain) {
  Rng rng(5);
  Sequential model;
  model.Emplace<Conv2d>(1, 3, 3, &rng, 1, 1);
  model.Emplace<Tanh>();
  model.Emplace<GlobalAvgPool2d>();
  model.Emplace<Dense>(3, 1, &rng);
  Tensor x = Tensor::RandomNormal({2, 1, 5, 5}, &rng);
  Tensor y = Tensor::RandomNormal({2, 1}, &rng);
  EXPECT_LT(CheckGradients(&model, x, y, MseLoss()).max_rel_error, 1e-4);
}

TEST(GradientCheckTest, MultiColumnTopology) {
  Rng rng(6);
  auto b1 = std::make_unique<Sequential>();
  b1->Emplace<Dense>(3, 2, &rng);
  b1->Emplace<Tanh>();
  auto b2 = std::make_unique<Sequential>();
  b2->Emplace<Dense>(3, 3, &rng);
  b2->Emplace<Tanh>();
  auto columns = std::make_unique<MultiColumn>();
  columns->AddBranch(std::move(b1));
  columns->AddBranch(std::move(b2));
  Sequential model;
  model.Add(std::move(columns));
  model.Emplace<Dense>(5, 1, &rng);
  Tensor x = Tensor::RandomNormal({3, 3}, &rng);
  Tensor y = Tensor::RandomNormal({3, 1}, &rng);
  EXPECT_LT(CheckGradients(&model, x, y, MseLoss()).max_rel_error, 1e-4);
}

TEST(GradientCheckTest, HuberLossGradients) {
  Rng rng(7);
  Sequential model;
  model.Emplace<Dense>(2, 3, &rng);
  model.Emplace<Tanh>();
  model.Emplace<Dense>(3, 1, &rng);
  Tensor x = Tensor::RandomNormal({4, 2}, &rng);
  Tensor y = Tensor::RandomNormal({4, 1}, &rng);
  EXPECT_LT(CheckGradients(&model, x, y, HuberLoss()).max_rel_error, 1e-4);
}

TEST(GradientCheckTest, ReportsCheckedCount) {
  Rng rng(8);
  Sequential model;
  model.Emplace<Dense>(2, 2, &rng);
  Tensor x = Tensor::RandomNormal({1, 2}, &rng);
  Tensor y = Tensor::RandomNormal({1, 2}, &rng);
  GradCheckResult result = CheckGradients(&model, x, y, MseLoss());
  EXPECT_EQ(result.checked, 2u * 2 + 2);
}

}  // namespace
}  // namespace tasfar
