#include "nn/residual.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "nn/loss.h"
#include "util/rng.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> DenseBody(size_t dim, Rng* rng) {
  auto body = std::make_unique<Sequential>();
  body->Emplace<Dense>(dim, dim, rng);
  body->Emplace<Tanh>();
  return body;
}

TEST(ResidualTest, AddsSkipConnection) {
  Rng rng(1);
  auto body = DenseBody(3, &rng);
  auto body_copy = body->CloneSequential();
  Residual res(std::move(body));
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor y = res.Forward(x, false);
  Tensor expected = body_copy->Forward(x, false) + x;
  EXPECT_NEAR(y.MaxAbsDiff(expected), 0.0, 1e-12);
}

TEST(ResidualTest, ZeroBodyIsIdentity) {
  Rng rng(2);
  auto body = std::make_unique<Sequential>();
  body->Emplace<Dense>(4, 4, &rng);
  Residual res(std::move(body));
  for (Tensor* p : res.Params()) p->Fill(0.0);
  Tensor x = Tensor::RandomNormal({3, 4}, &rng);
  EXPECT_DOUBLE_EQ(res.Forward(x, false).MaxAbsDiff(x), 0.0);
}

TEST(ResidualTest, GradientsMatchFiniteDifference) {
  Rng rng(3);
  Sequential model;
  model.Emplace<Dense>(2, 4, &rng);
  model.Emplace<Residual>(DenseBody(4, &rng));
  model.Emplace<Dense>(4, 1, &rng);
  Tensor x = Tensor::RandomNormal({3, 2}, &rng);
  Tensor y = Tensor::RandomNormal({3, 1}, &rng);
  GradCheckResult result = CheckGradients(
      &model, x, y,
      [](const Tensor& p, const Tensor& t, Tensor* g,
         const std::vector<double>* w) { return loss::Mse(p, t, g, w); });
  EXPECT_LT(result.max_rel_error, 1e-4);
}

TEST(ResidualTest, TcnStyleConvBlock) {
  // A same-shape dilated Conv1d block, the RoNIN/TCN building pattern.
  Rng rng(4);
  auto body = std::make_unique<Sequential>();
  body->Emplace<Conv1d>(4, 4, 3, &rng, 1, /*padding=*/2, /*dilation=*/2);
  body->Emplace<Tanh>();
  Sequential model;
  model.Emplace<Residual>(std::move(body));
  Tensor x = Tensor::RandomNormal({2, 4, 10}, &rng);
  Tensor y = model.Forward(x, false);
  EXPECT_TRUE(y.SameShape(x));
  Tensor g = model.Backward(Tensor::Ones(y.shape()));
  EXPECT_TRUE(g.SameShape(x));
}

TEST(ResidualTest, CloneIsDeepAndEquivalent) {
  Rng rng(5);
  Residual res(DenseBody(3, &rng));
  auto clone = res.Clone();
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  EXPECT_DOUBLE_EQ(res.Forward(x, false).MaxAbsDiff(clone->Forward(x, false)),
                   0.0);
  (*clone->Params()[0])[0] += 1.0;
  EXPECT_NE((*clone->Params()[0])[0], (*res.Params()[0])[0]);
}

TEST(ResidualTest, NameWrapsBody) {
  Rng rng(6);
  Residual res(DenseBody(2, &rng));
  EXPECT_NE(res.Name().find("Residual{"), std::string::npos);
}

TEST(ResidualDeathTest, ShapeChangingBodyAborts) {
  Rng rng(7);
  auto body = std::make_unique<Sequential>();
  body->Emplace<Dense>(3, 5, &rng);
  Residual res(std::move(body));
  EXPECT_DEATH(res.Forward(Tensor({1, 3}), false), "preserve the input");
}

}  // namespace
}  // namespace tasfar
