#include "nn/rmsprop.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"

namespace tasfar {
namespace {

double MinimizeQuadratic(Optimizer* opt, int steps) {
  Tensor x({1}, {0.0});
  Tensor g({1});
  for (int i = 0; i < steps; ++i) {
    g[0] = 2.0 * (x[0] - 3.0);
    opt->Step({&x}, {&g});
  }
  return x[0];
}

TEST(RmsPropTest, ConvergesOnQuadratic) {
  RmsProp opt(0.05);
  EXPECT_NEAR(MinimizeQuadratic(&opt, 500), 3.0, 1e-3);
}

TEST(RmsPropTest, MomentumVariantConverges) {
  RmsProp opt(0.02, 0.9, 1e-8, 0.5);
  EXPECT_NEAR(MinimizeQuadratic(&opt, 1200), 3.0, 2e-2);
}

TEST(RmsPropTest, FirstStepIsBounded) {
  RmsProp opt(0.01);
  Tensor x({1}, {0.0});
  Tensor g({1}, {1000.0});
  opt.Step({&x}, {&g});
  // RMS normalization makes the first step ~lr/sqrt(1-decay), independent
  // of the raw gradient scale.
  EXPECT_LT(std::fabs(x[0]), 0.05);
}

TEST(RmsPropTest, ResetClearsState) {
  RmsProp opt(0.01);
  Tensor x({1}, {0.0});
  Tensor g({1}, {1.0});
  opt.Step({&x}, {&g});
  const double first = x[0];
  opt.Reset();
  Tensor y({1}, {0.0});
  opt.Step({&y}, {&g});
  EXPECT_DOUBLE_EQ(y[0], first);
}

TEST(RmsPropDeathTest, BadHyperparametersAbort) {
  EXPECT_DEATH(RmsProp(-1.0), "");
  EXPECT_DEATH(RmsProp(0.01, 1.0), "");
  EXPECT_DEATH(RmsProp(0.01, 0.9, 1e-8, 1.0), "");
}

TEST(StepDecayScheduleTest, HalvesEveryPeriod) {
  Sgd sgd(0.8);
  StepDecaySchedule schedule(&sgd, /*period=*/2, /*factor=*/0.5);
  schedule.Tick();
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.8);
  schedule.Tick();
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.4);
  schedule.Tick();
  schedule.Tick();
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.2);
  EXPECT_EQ(schedule.ticks(), 4u);
}

TEST(StepDecayScheduleTest, FactorOneIsConstant) {
  Adam adam(0.1);
  StepDecaySchedule schedule(&adam, 1, 1.0);
  for (int i = 0; i < 5; ++i) schedule.Tick();
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.1);
}

}  // namespace
}  // namespace tasfar
