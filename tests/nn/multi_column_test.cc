#include "nn/multi_column.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "util/rng.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> Branch(size_t in, size_t out, Rng* rng) {
  auto b = std::make_unique<Sequential>();
  b->Emplace<Dense>(in, out, rng);
  b->Emplace<Relu>();
  return b;
}

TEST(MultiColumnTest, ConcatenatesBranchOutputs) {
  Rng rng(1);
  MultiColumn mc;
  mc.AddBranch(Branch(3, 2, &rng));
  mc.AddBranch(Branch(3, 5, &rng));
  Tensor x = Tensor::RandomNormal({4, 3}, &rng);
  Tensor y = mc.Forward(x, false);
  EXPECT_EQ(y.dim(0), 4u);
  EXPECT_EQ(y.dim(1), 7u);
}

TEST(MultiColumnTest, OutputsMatchIndividualBranches) {
  Rng rng(2);
  auto b1 = Branch(3, 2, &rng);
  auto b2 = Branch(3, 3, &rng);
  auto b1_copy = b1->CloneSequential();
  auto b2_copy = b2->CloneSequential();
  MultiColumn mc;
  mc.AddBranch(std::move(b1));
  mc.AddBranch(std::move(b2));
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor fused = mc.Forward(x, false);
  Tensor y1 = b1_copy->Forward(x, false);
  Tensor y2 = b2_copy->Forward(x, false);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(fused.At(i, j), y1.At(i, j));
    }
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(fused.At(i, 2 + j), y2.At(i, j));
    }
  }
}

TEST(MultiColumnTest, BackwardSumsBranchInputGradients) {
  Rng rng(3);
  MultiColumn mc;
  mc.AddBranch(Branch(3, 2, &rng));
  mc.AddBranch(Branch(3, 2, &rng));
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor y = mc.Forward(x, true);
  Tensor g = mc.Backward(Tensor::Ones(y.shape()));
  EXPECT_TRUE(g.SameShape(x));
}

TEST(MultiColumnTest, ParamsAcrossBranches) {
  Rng rng(4);
  MultiColumn mc;
  mc.AddBranch(Branch(3, 2, &rng));
  mc.AddBranch(Branch(3, 2, &rng));
  EXPECT_EQ(mc.Params().size(), 4u);
  EXPECT_EQ(mc.Grads().size(), 4u);
}

TEST(MultiColumnTest, CloneIsDeepAndEquivalent) {
  Rng rng(5);
  MultiColumn mc;
  mc.AddBranch(Branch(3, 2, &rng));
  mc.AddBranch(Branch(3, 4, &rng));
  auto clone = mc.Clone();
  Tensor x = Tensor::RandomNormal({3, 3}, &rng);
  EXPECT_DOUBLE_EQ(mc.Forward(x, false).MaxAbsDiff(clone->Forward(x, false)),
                   0.0);
  (*clone->Params()[0])[0] += 1.0;
  EXPECT_NE((*clone->Params()[0])[0], (*mc.Params()[0])[0]);
}

TEST(MultiColumnTest, NameListsBranches) {
  Rng rng(6);
  MultiColumn mc;
  mc.AddBranch(Branch(3, 2, &rng));
  EXPECT_NE(mc.Name().find("MultiColumn{"), std::string::npos);
}

TEST(MultiColumnDeathTest, NoBranchesAborts) {
  MultiColumn mc;
  EXPECT_DEATH(mc.Forward(Tensor({1, 3}), false), "no branches");
}

}  // namespace
}  // namespace tasfar
