#include <gtest/gtest.h>

#include "nn/conv1d.h"
#include "nn/conv2d.h"
#include "util/rng.h"

namespace tasfar {
namespace {

// --- Conv1d ----------------------------------------------------------------

TEST(Conv1dTest, OutputLengthNoPadding) {
  Rng rng(1);
  Conv1d conv(1, 1, 3, &rng);
  EXPECT_EQ(conv.OutputLength(10), 8u);
}

TEST(Conv1dTest, OutputLengthSamePadding) {
  Rng rng(1);
  Conv1d conv(1, 1, 3, &rng, 1, /*padding=*/1);
  EXPECT_EQ(conv.OutputLength(10), 10u);
}

TEST(Conv1dTest, OutputLengthWithStrideAndDilation) {
  Rng rng(1);
  Conv1d conv(1, 1, 3, &rng, /*stride=*/2, /*padding=*/0, /*dilation=*/2);
  // Effective kernel = 5, (10 - 5)/2 + 1 = 3.
  EXPECT_EQ(conv.OutputLength(10), 3u);
}

TEST(Conv1dTest, IdentityKernelPassesThrough) {
  Rng rng(2);
  Conv1d conv(1, 1, 1, &rng);
  conv.Params()[0]->Fill(1.0);  // 1x1x1 kernel = identity.
  conv.Params()[1]->Fill(0.0);
  Tensor x({1, 1, 5}, {1, 2, 3, 4, 5});
  Tensor y = conv.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.MaxAbsDiff(x), 0.0);
}

TEST(Conv1dTest, MovingSumKernel) {
  Rng rng(3);
  Conv1d conv(1, 1, 2, &rng);
  conv.Params()[0]->Fill(1.0);
  conv.Params()[1]->Fill(0.0);
  Tensor x({1, 1, 4}, {1, 2, 3, 4});
  Tensor y = conv.Forward(x, false);
  ASSERT_EQ(y.dim(2), 3u);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 1), 5.0);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 2), 7.0);
}

TEST(Conv1dTest, BiasAdded) {
  Rng rng(4);
  Conv1d conv(1, 1, 1, &rng);
  conv.Params()[0]->Fill(0.0);
  (*conv.Params()[1])[0] = 2.5;
  Tensor y = conv.Forward(Tensor({1, 1, 3}), false);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 1), 2.5);
}

TEST(Conv1dTest, PaddingContributesZeros) {
  Rng rng(5);
  Conv1d conv(1, 1, 3, &rng, 1, /*padding=*/1);
  conv.Params()[0]->Fill(1.0);
  conv.Params()[1]->Fill(0.0);
  Tensor x({1, 1, 3}, {1, 1, 1});
  Tensor y = conv.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0), 2.0);  // Left edge misses one tap.
  EXPECT_DOUBLE_EQ(y.At(0, 0, 1), 3.0);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 2), 2.0);
}

TEST(Conv1dTest, MultiChannelSumsContributions) {
  Rng rng(6);
  Conv1d conv(2, 1, 1, &rng);
  conv.Params()[0]->Fill(1.0);
  conv.Params()[1]->Fill(0.0);
  Tensor x({1, 2, 2}, {1.0, 2.0, 10.0, 20.0});
  Tensor y = conv.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0), 11.0);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 1), 22.0);
}

TEST(Conv1dTest, BackwardShapesMatch) {
  Rng rng(7);
  Conv1d conv(3, 5, 3, &rng, 1, 1);
  Tensor x = Tensor::RandomNormal({2, 3, 8}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = conv.Backward(Tensor::Ones(y.shape()));
  EXPECT_TRUE(g.SameShape(x));
}

TEST(Conv1dTest, CloneProducesSameOutput) {
  Rng rng(8);
  Conv1d conv(2, 4, 3, &rng, 1, 1, 2);
  auto clone = conv.Clone();
  Tensor x = Tensor::RandomNormal({1, 2, 10}, &rng);
  EXPECT_DOUBLE_EQ(
      conv.Forward(x, false).MaxAbsDiff(clone->Forward(x, false)), 0.0);
}

TEST(Conv1dDeathTest, WrongChannelCountAborts) {
  Rng rng(9);
  Conv1d conv(3, 1, 3, &rng);
  EXPECT_DEATH(conv.Forward(Tensor({1, 2, 8}), false), "Conv1d expects");
}

// --- Conv2d ----------------------------------------------------------------

TEST(Conv2dTest, OutputExtent) {
  Rng rng(10);
  Conv2d conv(1, 1, 3, &rng);
  EXPECT_EQ(conv.OutputExtent(8), 6u);
  Conv2d same(1, 1, 3, &rng, 1, 1);
  EXPECT_EQ(same.OutputExtent(8), 8u);
}

TEST(Conv2dTest, BoxFilterSums) {
  Rng rng(11);
  Conv2d conv(1, 1, 2, &rng);
  conv.Params()[0]->Fill(1.0);
  conv.Params()[1]->Fill(0.0);
  Tensor x({1, 1, 2, 2}, {1.0, 2.0, 3.0, 4.0});
  Tensor y = conv.Forward(x, false);
  ASSERT_EQ(y.dim(2), 1u);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0, 0), 10.0);
}

TEST(Conv2dTest, StrideSkipsPositions) {
  Rng rng(12);
  Conv2d conv(1, 1, 2, &rng, /*stride=*/2);
  conv.Params()[0]->Fill(1.0);
  conv.Params()[1]->Fill(0.0);
  Tensor x = Tensor::Ones({1, 1, 4, 4});
  Tensor y = conv.Forward(x, false);
  EXPECT_EQ(y.dim(2), 2u);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 1, 1), 4.0);
}

TEST(Conv2dTest, BackwardShapesMatch) {
  Rng rng(13);
  Conv2d conv(2, 3, 3, &rng, 1, 1);
  Tensor x = Tensor::RandomNormal({2, 2, 6, 6}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor g = conv.Backward(Tensor::Ones(y.shape()));
  EXPECT_TRUE(g.SameShape(x));
}

// --- MaxPool2d ---------------------------------------------------------

TEST(MaxPool2dTest, PicksMaxima) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 0,
                          3, 4, 9, 1});
  Tensor y = pool.Forward(x, false);
  ASSERT_EQ(y.dim(2), 1u);
  ASSERT_EQ(y.dim(3), 2u);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0, 1), 9.0);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1.0, 7.0, 3.0, 2.0});
  pool.Forward(x, true);
  Tensor g = pool.Backward(Tensor({1, 1, 1, 1}, {1.0}));
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 1.0);  // 7 was the max.
  EXPECT_DOUBLE_EQ(g[2], 0.0);
  EXPECT_DOUBLE_EQ(g[3], 0.0);
}

TEST(MaxPool2dTest, NegativeInputsHandled) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {-5.0, -1.0, -3.0, -2.0});
  Tensor y = pool.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0, 0), -1.0);
}

// --- Flatten & GlobalAvgPool2d ------------------------------------------

TEST(FlattenTest, CollapsesTrailingDims) {
  Flatten f;
  Tensor x({2, 3, 4, 5});
  Tensor y = f.Forward(x, false);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 60u);
}

TEST(FlattenTest, BackwardRestoresShape) {
  Flatten f;
  Tensor x({2, 3, 4});
  Tensor y = f.Forward(x, true);
  Tensor g = f.Backward(Tensor::Ones(y.shape()));
  EXPECT_TRUE(g.SameShape(x));
}

TEST(GlobalAvgPool2dTest, AveragesSpatially) {
  GlobalAvgPool2d gap;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = gap.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 25.0);
}

TEST(GlobalAvgPool2dTest, BackwardSpreadsUniformly) {
  GlobalAvgPool2d gap;
  Tensor x({1, 1, 2, 2});
  gap.Forward(x, true);
  Tensor g = gap.Backward(Tensor({1, 1}, {4.0}));
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(g[i], 1.0);
}

}  // namespace
}  // namespace tasfar
