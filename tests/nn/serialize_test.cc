#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "nn/activations.h"
#include "nn/dense.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> Model(uint64_t seed) {
  Rng rng(seed);
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(3, 4, &rng);
  m->Emplace<Relu>();
  m->Emplace<Dense>(4, 2, &rng);
  return m;
}

TEST(SerializeTest, InMemoryRoundTripExact) {
  auto a = Model(1);
  auto b = Model(2);  // Different weights.
  const std::string blob = SerializeParams(a.get());
  ASSERT_TRUE(DeserializeParams(b.get(), blob).ok());
  Rng rng(3);
  Tensor x = Tensor::RandomNormal({5, 3}, &rng);
  EXPECT_DOUBLE_EQ(a->Forward(x, false).MaxAbsDiff(b->Forward(x, false)),
                   0.0);
}

TEST(SerializeTest, HexFloatsRoundTripBitExact) {
  auto a = Model(4);
  (*a->Params()[0])[0] = 0.1 + 0.2;  // A value with no short decimal form.
  auto b = Model(5);
  ASSERT_TRUE(DeserializeParams(b.get(), SerializeParams(a.get())).ok());
  EXPECT_DOUBLE_EQ((*b->Params()[0])[0], 0.1 + 0.2);
}

TEST(SerializeTest, FileRoundTrip) {
  auto a = Model(6);
  auto b = Model(7);
  const std::string path = testing::TempDir() + "/params_test.txt";
  ASSERT_TRUE(SaveParams(a.get(), path).ok());
  ASSERT_TRUE(LoadParams(b.get(), path).ok());
  Rng rng(8);
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  EXPECT_DOUBLE_EQ(a->Forward(x, false).MaxAbsDiff(b->Forward(x, false)),
                   0.0);
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicRejected) {
  auto m = Model(9);
  EXPECT_EQ(DeserializeParams(m.get(), "GARBAGE\n").code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ParamCountMismatchRejected) {
  auto a = Model(10);
  Rng rng(11);
  Sequential small;
  small.Emplace<Dense>(3, 4, &rng);
  const std::string blob = SerializeParams(&small);
  EXPECT_EQ(DeserializeParams(a.get(), blob).code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(12);
  Sequential a;
  a.Emplace<Dense>(3, 4, &rng);
  Sequential b;
  b.Emplace<Dense>(4, 3, &rng);
  EXPECT_EQ(DeserializeParams(&b, SerializeParams(&a)).code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeTest, TruncatedDataRejected) {
  auto a = Model(13);
  std::string blob = SerializeParams(a.get());
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(DeserializeParams(a.get(), blob).ok());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto a = Model(14);
  EXPECT_EQ(LoadParams(a.get(), "/no/such/file.txt").code(),
            StatusCode::kNotFound);
}

// A corrupt load must be transactional: the model keeps its previous
// parameters bit-for-bit (the deployment fallback is "keep serving the
// weights you already have").
TEST(SerializeTest, FailedLoadLeavesModelUntouched) {
  auto a = Model(15);
  const std::string before = SerializeParams(a.get());

  std::string truncated = before;
  truncated.resize(truncated.size() - 10);
  EXPECT_FALSE(DeserializeParams(a.get(), truncated).ok());
  EXPECT_EQ(SerializeParams(a.get()), before);

  std::string garbled = before;
  garbled.replace(garbled.rfind("0x"), 2, "zz");
  EXPECT_FALSE(DeserializeParams(a.get(), garbled).ok());
  EXPECT_EQ(SerializeParams(a.get()), before);
}

TEST(SerializeTest, CorruptTokenRejected) {
  auto a = Model(16);
  std::string blob = SerializeParams(a.get());
  // strtod would silently parse the "0x1..." prefix of a damaged token;
  // strict end-pointer checking must reject it instead.
  blob.replace(blob.rfind("0x"), 2, "0y");
  EXPECT_EQ(DeserializeParams(a.get(), blob).code(),
            StatusCode::kInvalidArgument);
}

TEST(SerializeTest, NonFiniteValueRejected) {
  auto a = Model(17);
  (*a->Params()[0])[0] = std::numeric_limits<double>::quiet_NaN();
  const std::string blob = SerializeParams(a.get());
  auto b = Model(18);
  const std::string before = SerializeParams(b.get());
  const Status status = DeserializeParams(b.get(), blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SerializeParams(b.get()), before);
}

TEST(SerializeTest, InjectedLoadFaultIsRecoverable) {
  ASSERT_TRUE(failpoint::Configure("serialize.load.corrupt").ok());
  auto a = Model(19);
  const std::string blob = SerializeParams(a.get());
  EXPECT_EQ(DeserializeParams(a.get(), blob).code(), StatusCode::kIoError);
  failpoint::Disable();
  EXPECT_TRUE(DeserializeParams(a.get(), blob).ok());
}

TEST(SerializeTest, InjectedSaveFaultIsRecoverable) {
  ASSERT_TRUE(failpoint::Configure("serialize.save.io").ok());
  auto a = Model(20);
  const std::string path = testing::TempDir() + "/params_fault_test.txt";
  EXPECT_EQ(SaveParams(a.get(), path).code(), StatusCode::kIoError);
  failpoint::Disable();
  ASSERT_TRUE(SaveParams(a.get(), path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tasfar
