#include "nn/activations.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tasfar {
namespace {

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  Tensor x({1, 4}, {-2.0, -0.5, 0.0, 3.0});
  Tensor y = relu.Forward(x, false);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 3.0);
}

TEST(ReluTest, BackwardMasksNegatives) {
  Relu relu;
  Tensor x({1, 3}, {-1.0, 0.0, 2.0});
  relu.Forward(x, true);
  Tensor g = relu.Backward(Tensor({1, 3}, {1.0, 1.0, 1.0}));
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 0.0);  // Subgradient 0 at the kink.
  EXPECT_DOUBLE_EQ(g[2], 1.0);
}

TEST(LeakyReluTest, NegativeSlopeApplied) {
  LeakyRelu lr(0.1);
  Tensor x({1, 2}, {-10.0, 10.0});
  Tensor y = lr.Forward(x, false);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
}

TEST(LeakyReluTest, BackwardScalesNegativeSide) {
  LeakyRelu lr(0.2);
  lr.Forward(Tensor({1, 2}, {-1.0, 1.0}), true);
  Tensor g = lr.Backward(Tensor({1, 2}, {5.0, 5.0}));
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 5.0);
}

TEST(LeakyReluTest, NameIncludesSlope) {
  EXPECT_EQ(LeakyRelu(0.01).Name(), "LeakyRelu(0.01)");
}

TEST(TanhTest, ForwardMatchesStd) {
  Tanh tanh_layer;
  Tensor x({1, 3}, {-1.0, 0.0, 2.0});
  Tensor y = tanh_layer.Forward(x, false);
  EXPECT_DOUBLE_EQ(y[0], std::tanh(-1.0));
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], std::tanh(2.0));
}

TEST(TanhTest, BackwardUsesDerivative) {
  Tanh tanh_layer;
  Tensor x({1, 1}, {0.5});
  tanh_layer.Forward(x, true);
  Tensor g = tanh_layer.Backward(Tensor({1, 1}, {1.0}));
  const double t = std::tanh(0.5);
  EXPECT_NEAR(g[0], 1.0 - t * t, 1e-12);
}

TEST(SigmoidTest, ForwardRange) {
  Sigmoid sig;
  Tensor x({1, 3}, {-100.0, 0.0, 100.0});
  Tensor y = sig.Forward(x, false);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
}

TEST(SigmoidTest, NumericallyStableAtExtremes) {
  Sigmoid sig;
  Tensor x({1, 2}, {-745.0, 745.0});
  Tensor y = sig.Forward(x, false);
  EXPECT_TRUE(y.AllFinite());
}

TEST(SigmoidTest, BackwardUsesDerivative) {
  Sigmoid sig;
  sig.Forward(Tensor({1, 1}, {0.0}), true);
  Tensor g = sig.Backward(Tensor({1, 1}, {4.0}));
  EXPECT_DOUBLE_EQ(g[0], 4.0 * 0.25);  // σ'(0) = 0.25.
}

TEST(ActivationsTest, CloneIsIndependent) {
  Relu relu;
  auto clone = relu.Clone();
  EXPECT_EQ(clone->Name(), "Relu");
  Tensor x({1, 1}, {-1.0});
  EXPECT_DOUBLE_EQ(clone->Forward(x, false)[0], 0.0);
}

TEST(ActivationsTest, WorkOnHigherRankTensors) {
  Relu relu;
  Tensor x({2, 3, 4});
  x.At(1, 2, 3) = -5.0;
  x.At(0, 0, 0) = 5.0;
  Tensor y = relu.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.At(1, 2, 3), 0.0);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0), 5.0);
}

}  // namespace
}  // namespace tasfar
