#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tasfar {
namespace {

// Minimizes f(x) = (x - 3)² starting from 0 with the given optimizer.
double MinimizeQuadratic(Optimizer* opt, int steps) {
  Tensor x({1}, {0.0});
  Tensor g({1});
  for (int i = 0; i < steps; ++i) {
    g[0] = 2.0 * (x[0] - 3.0);
    opt->Step({&x}, {&g});
  }
  return x[0];
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd sgd(0.1);
  EXPECT_NEAR(MinimizeQuadratic(&sgd, 200), 3.0, 1e-6);
}

TEST(SgdTest, SingleStepMatchesFormula) {
  Sgd sgd(0.5);
  Tensor x({1}, {1.0});
  Tensor g({1}, {2.0});
  sgd.Step({&x}, {&g});
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(SgdTest, MomentumAcceleratesAlongConstantGradient) {
  Sgd plain(0.1, 0.0);
  Sgd momentum(0.1, 0.9);
  Tensor x1({1}, {0.0}), x2({1}, {0.0});
  Tensor g({1}, {1.0});
  for (int i = 0; i < 10; ++i) {
    plain.Step({&x1}, {&g});
    momentum.Step({&x2}, {&g});
  }
  EXPECT_LT(x2[0], x1[0]);  // Momentum travels further (more negative).
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Sgd sgd(0.1, 0.0, /*weight_decay=*/0.5);
  Tensor x({1}, {10.0});
  Tensor g({1}, {0.0});
  sgd.Step({&x}, {&g});
  EXPECT_DOUBLE_EQ(x[0], 10.0 - 0.1 * 0.5 * 10.0);
}

TEST(SgdTest, ResetClearsMomentum) {
  Sgd sgd(0.1, 0.9);
  Tensor x({1}, {0.0});
  Tensor g({1}, {1.0});
  sgd.Step({&x}, {&g});
  sgd.Reset();
  Tensor x2({1}, {0.0});
  Tensor g2({1}, {1.0});
  sgd.Step({&x2}, {&g2});
  EXPECT_DOUBLE_EQ(x2[0], -0.1);  // Fresh momentum state.
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam adam(0.1);
  EXPECT_NEAR(MinimizeQuadratic(&adam, 500), 3.0, 1e-4);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  Adam adam(0.01);
  Tensor x({1}, {0.0});
  Tensor g({1}, {100.0});
  adam.Step({&x}, {&g});
  // Bias-corrected Adam moves ~lr regardless of gradient scale.
  EXPECT_NEAR(x[0], -0.01, 1e-6);
}

TEST(AdamTest, InvariantToGradientScale) {
  Adam a1(0.05), a2(0.05);
  Tensor x1({1}, {0.0}), x2({1}, {0.0});
  for (int i = 0; i < 20; ++i) {
    Tensor g1({1}, {1.0});
    Tensor g2({1}, {1000.0});
    a1.Step({&x1}, {&g1});
    a2.Step({&x2}, {&g2});
  }
  EXPECT_NEAR(x1[0], x2[0], 1e-6);
}

TEST(AdamTest, ResetRestoresFreshState) {
  Adam adam(0.1);
  Tensor x({1}, {0.0});
  Tensor g({1}, {1.0});
  adam.Step({&x}, {&g});
  const double first_move = x[0];
  adam.Reset();
  Tensor y({1}, {0.0});
  adam.Step({&y}, {&g});
  EXPECT_DOUBLE_EQ(y[0], first_move);
}

TEST(AdamTest, LearningRateMutable) {
  Adam adam(0.1);
  adam.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.5);
}

TEST(OptimizerTest, MultipleParameterTensors) {
  Adam adam(0.1);
  Tensor a({2}, {0.0, 0.0});
  Tensor b({1}, {0.0});
  for (int i = 0; i < 300; ++i) {
    Tensor ga({2}, {2.0 * (a[0] - 1.0), 2.0 * (a[1] + 1.0)});
    Tensor gb({1}, {2.0 * (b[0] - 5.0)});
    adam.Step({&a, &b}, {&ga, &gb});
  }
  EXPECT_NEAR(a[0], 1.0, 1e-3);
  EXPECT_NEAR(a[1], -1.0, 1e-3);
  EXPECT_NEAR(b[0], 5.0, 1e-3);
}

TEST(OptimizerDeathTest, RebindingDifferentShapesAborts) {
  Adam adam(0.1);
  Tensor a({2});
  Tensor ga({2});
  adam.Step({&a}, {&ga});
  Tensor b({3});
  Tensor gb({3});
  EXPECT_DEATH(adam.Step({&b}, {&gb}), "rebound");
}

TEST(OptimizerDeathTest, BadHyperparametersAbort) {
  EXPECT_DEATH(Sgd(-0.1), "");
  EXPECT_DEATH(Sgd(0.1, 1.0), "");
  EXPECT_DEATH(Adam(0.1, 1.0), "");
}

}  // namespace
}  // namespace tasfar
