// Algebraic invariants of the weighted losses, swept over batch shapes.

#include <gtest/gtest.h>

#include <tuple>

#include "nn/loss.h"
#include "util/rng.h"

namespace tasfar {
namespace {

using Shape = std::tuple<size_t, size_t>;  // batch, dims.

class LossPropertyTest : public ::testing::TestWithParam<Shape> {
 protected:
  size_t batch() const { return std::get<0>(GetParam()); }
  size_t dims() const { return std::get<1>(GetParam()); }

  Tensor Random(uint64_t seed) const {
    Rng rng(seed);
    return Tensor::RandomNormal({batch(), dims()}, &rng);
  }
};

TEST_P(LossPropertyTest, UnitWeightsEqualNoWeights) {
  Tensor p = Random(1), t = Random(2);
  std::vector<double> ones(batch(), 1.0);
  EXPECT_DOUBLE_EQ(loss::Mse(p, t, nullptr, &ones), loss::Mse(p, t));
  EXPECT_DOUBLE_EQ(loss::Mae(p, t, nullptr, &ones), loss::Mae(p, t));
  EXPECT_DOUBLE_EQ(loss::Huber(p, t, 1.0, nullptr, &ones),
                   loss::Huber(p, t, 1.0));
}

TEST_P(LossPropertyTest, LossIsNonNegativeAndZeroAtTarget) {
  Tensor p = Random(3);
  EXPECT_DOUBLE_EQ(loss::Mse(p, p), 0.0);
  EXPECT_DOUBLE_EQ(loss::Mae(p, p), 0.0);
  EXPECT_DOUBLE_EQ(loss::Huber(p, p, 0.5), 0.0);
  Tensor t = Random(4);
  EXPECT_GE(loss::Mse(p, t), 0.0);
  EXPECT_GE(loss::Mae(p, t), 0.0);
  EXPECT_GE(loss::Huber(p, t, 0.5), 0.0);
}

TEST_P(LossPropertyTest, WeightScalingScalesLossLinearly) {
  Tensor p = Random(5), t = Random(6);
  Rng rng(7);
  std::vector<double> w(batch());
  for (double& x : w) x = rng.Uniform(0.1, 2.0);
  std::vector<double> w2 = w;
  for (double& x : w2) x *= 3.0;
  EXPECT_NEAR(loss::Mse(p, t, nullptr, &w2),
              3.0 * loss::Mse(p, t, nullptr, &w), 1e-9);
  EXPECT_NEAR(loss::Mae(p, t, nullptr, &w2),
              3.0 * loss::Mae(p, t, nullptr, &w), 1e-9);
}

TEST_P(LossPropertyTest, HuberBetweenScaledMaeAndHalfMse) {
  // For any residuals: huber <= 0.5 * squared error and
  // huber <= delta * absolute error (both summed the same way).
  Tensor p = Random(8), t = Random(9);
  const double delta = 0.7;
  const double huber = loss::Huber(p, t, delta);
  const double half_mse = 0.5 * loss::Mse(p, t);
  EXPECT_LE(huber, half_mse + 1e-12);
  const double scaled_mae =
      delta * loss::Mae(p, t) * static_cast<double>(dims());
  EXPECT_LE(huber, scaled_mae + 1e-12);
}

TEST_P(LossPropertyTest, GradientIsZeroAtTarget) {
  Tensor p = Random(10);
  Tensor grad;
  loss::Mse(p, p, &grad);
  EXPECT_DOUBLE_EQ(grad.SquaredNorm(), 0.0);
  loss::Huber(p, p, 1.0, &grad);
  EXPECT_DOUBLE_EQ(grad.SquaredNorm(), 0.0);
}

TEST_P(LossPropertyTest, MseIsSymmetricInArguments) {
  Tensor p = Random(11), t = Random(12);
  EXPECT_DOUBLE_EQ(loss::Mse(p, t), loss::Mse(t, p));
  EXPECT_DOUBLE_EQ(loss::Mae(p, t), loss::Mae(t, p));
}

INSTANTIATE_TEST_SUITE_P(Shapes, LossPropertyTest,
                         ::testing::Values(Shape{1, 1}, Shape{4, 1},
                                           Shape{1, 3}, Shape{7, 2},
                                           Shape{16, 4}),
                         [](const auto& param_info) {
                           return "b" +
                                  std::to_string(std::get<0>(param_info.param)) +
                                  "d" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

}  // namespace
}  // namespace tasfar
