#include "nn/layer_norm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "nn/loss.h"
#include "util/rng.h"

namespace tasfar {
namespace {

TEST(LayerNormTest, NormalizesEachRow) {
  LayerNorm ln(4);
  Tensor x({2, 4}, {1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0});
  Tensor y = ln.Forward(x, false);
  for (size_t i = 0; i < 2; ++i) {
    double mean = 0.0, var = 0.0;
    for (size_t j = 0; j < 4; ++j) mean += y.At(i, j);
    mean /= 4.0;
    for (size_t j = 0; j < 4; ++j) {
      var += (y.At(i, j) - mean) * (y.At(i, j) - mean);
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(LayerNormTest, ScaleInvariantPerRow) {
  LayerNorm ln(3);
  Tensor a({1, 3}, {1.0, 2.0, 3.0});
  Tensor b({1, 3}, {10.0, 20.0, 30.0});
  Tensor ya = ln.Forward(a, false);
  Tensor yb = ln.Forward(b, false);
  EXPECT_NEAR(ya.MaxAbsDiff(yb), 0.0, 1e-4);
}

TEST(LayerNormTest, GainAndBiasApplied) {
  LayerNorm ln(2);
  (*ln.Params()[0])[0] = 2.0;  // gain
  (*ln.Params()[1])[1] = 5.0;  // bias
  Tensor x({1, 2}, {-1.0, 1.0});
  Tensor y = ln.Forward(x, false);
  // Normalized input is approx {-1, +1}.
  EXPECT_NEAR(y.At(0, 0), -2.0, 1e-2);
  EXPECT_NEAR(y.At(0, 1), 6.0, 1e-2);
}

TEST(LayerNormTest, TrainingFlagIrrelevant) {
  LayerNorm ln(4);
  Rng rng(1);
  Tensor x = Tensor::RandomNormal({3, 4}, &rng);
  EXPECT_DOUBLE_EQ(ln.Forward(x, true).MaxAbsDiff(ln.Forward(x, false)),
                   0.0);
}

TEST(LayerNormTest, GradientsMatchFiniteDifference) {
  Rng rng(2);
  Sequential model;
  model.Emplace<Dense>(3, 4, &rng);
  model.Emplace<LayerNorm>(4);
  model.Emplace<Dense>(4, 2, &rng);
  Tensor x = Tensor::RandomNormal({3, 3}, &rng);
  Tensor y = Tensor::RandomNormal({3, 2}, &rng);
  GradCheckResult result = CheckGradients(
      &model, x, y,
      [](const Tensor& p, const Tensor& t, Tensor* g,
         const std::vector<double>* w) { return loss::Mse(p, t, g, w); });
  EXPECT_LT(result.max_rel_error, 1e-4);
}

TEST(LayerNormTest, CloneCopiesParams) {
  LayerNorm ln(2);
  (*ln.Params()[0])[0] = 3.0;
  auto clone = ln.Clone();
  EXPECT_DOUBLE_EQ((*clone->Params()[0])[0], 3.0);
  (*clone->Params()[0])[0] = 7.0;
  EXPECT_DOUBLE_EQ((*ln.Params()[0])[0], 3.0);
}

TEST(EluTest, PositiveIdentityNegativeSaturates) {
  Elu elu(1.0);
  Tensor x({1, 3}, {-10.0, 0.0, 2.0});
  Tensor y = elu.Forward(x, false);
  EXPECT_NEAR(y[0], -1.0, 1e-4);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(EluTest, ContinuousDerivativeAtZero) {
  Elu elu(1.0);
  elu.Forward(Tensor({1, 2}, {-1e-9, 1e-9}), true);
  Tensor g = elu.Backward(Tensor({1, 2}, {1.0, 1.0}));
  EXPECT_NEAR(g[0], 1.0, 1e-6);
  EXPECT_NEAR(g[1], 1.0, 1e-6);
}

TEST(EluTest, GradientsMatchFiniteDifference) {
  Rng rng(3);
  Sequential model;
  model.Emplace<Dense>(2, 4, &rng);
  model.Emplace<Elu>(0.7);
  model.Emplace<Dense>(4, 1, &rng);
  Tensor x = Tensor::RandomNormal({4, 2}, &rng);
  Tensor y = Tensor::RandomNormal({4, 1}, &rng);
  GradCheckResult result = CheckGradients(
      &model, x, y,
      [](const Tensor& p, const Tensor& t, Tensor* g,
         const std::vector<double>* w) { return loss::Mse(p, t, g, w); });
  EXPECT_LT(result.max_rel_error, 1e-4);
}

TEST(AvgPool2dTest, AveragesWindows) {
  AvgPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1.0, 3.0, 5.0, 7.0});
  Tensor y = pool.Forward(x, false);
  EXPECT_DOUBLE_EQ(y.At(0, 0, 0, 0), 4.0);
}

TEST(AvgPool2dTest, BackwardSpreadsUniformly) {
  AvgPool2d pool(2);
  pool.Forward(Tensor({1, 1, 2, 2}), true);
  Tensor g = pool.Backward(Tensor({1, 1, 1, 1}, {8.0}));
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(g[i], 2.0);
}

TEST(AvgPool2dTest, GradientsMatchFiniteDifference) {
  Rng rng(4);
  Sequential model;
  model.Emplace<AvgPool2d>(2);
  model.Emplace<Flatten>();
  model.Emplace<Dense>(4, 1, &rng);
  Tensor x = Tensor::RandomNormal({2, 1, 4, 4}, &rng);
  Tensor y = Tensor::RandomNormal({2, 1}, &rng);
  GradCheckResult result = CheckGradients(
      &model, x, y,
      [](const Tensor& p, const Tensor& t, Tensor* g,
         const std::vector<double>* w) { return loss::Mse(p, t, g, w); });
  EXPECT_LT(result.max_rel_error, 1e-4);
}

}  // namespace
}  // namespace tasfar
