#include "nn/dropout.h"

#include <gtest/gtest.h>

namespace tasfar {
namespace {

TEST(DropoutTest, IdentityAtInference) {
  Dropout d(0.5);
  Tensor x({4, 4}, std::vector<double>(16, 3.0));
  Tensor y = d.Forward(x, /*training=*/false);
  EXPECT_DOUBLE_EQ(y.MaxAbsDiff(x), 0.0);
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  Dropout d(0.0);
  Tensor x({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.Forward(x, true).MaxAbsDiff(x), 0.0);
}

TEST(DropoutTest, TrainingZeroesRoughlyRateFraction) {
  Dropout d(0.3, /*seed=*/42);
  Tensor x = Tensor::Ones({100, 100});
  Tensor y = d.Forward(x, true);
  size_t zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) zeros += (y[i] == 0.0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()),
              0.3, 0.02);
}

TEST(DropoutTest, SurvivorsScaledByInverseKeep) {
  Dropout d(0.5, 7);
  Tensor x = Tensor::Ones({10, 10});
  Tensor y = d.Forward(x, true);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(y[i] == 0.0 || y[i] == 2.0);
  }
}

TEST(DropoutTest, ExpectedValuePreserved) {
  Dropout d(0.2, 11);
  Tensor x = Tensor::Ones({200, 200});
  Tensor y = d.Forward(x, true);
  EXPECT_NEAR(y.Mean(), 1.0, 0.02);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout d(0.5, 13);
  Tensor x = Tensor::Ones({8, 8});
  Tensor y = d.Forward(x, true);
  Tensor g = d.Backward(Tensor::Ones({8, 8}));
  // Gradient passes exactly where the forward did.
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(g[i], y[i]);
  }
}

TEST(DropoutTest, BackwardIdentityAfterInferenceForward) {
  Dropout d(0.5, 17);
  Tensor x = Tensor::Ones({4, 4});
  d.Forward(x, false);
  Tensor g = d.Backward(Tensor::Full({4, 4}, 2.0));
  EXPECT_DOUBLE_EQ(g.MaxAbsDiff(Tensor::Full({4, 4}, 2.0)), 0.0);
}

TEST(DropoutTest, StochasticAcrossCalls) {
  Dropout d(0.5, 19);
  Tensor x = Tensor::Ones({10, 10});
  Tensor y1 = d.Forward(x, true);
  Tensor y2 = d.Forward(x, true);
  EXPECT_GT(y1.MaxAbsDiff(y2), 0.0);  // MC-dropout relies on this.
}

TEST(DropoutTest, SameSeedSameMaskSequence) {
  Dropout a(0.5, 23), b(0.5, 23);
  Tensor x = Tensor::Ones({10, 10});
  EXPECT_DOUBLE_EQ(a.Forward(x, true).MaxAbsDiff(b.Forward(x, true)), 0.0);
}

TEST(DropoutTest, CloneRestartsSeed) {
  Dropout d(0.5, 29);
  Tensor x = Tensor::Ones({10, 10});
  Tensor first = d.Forward(x, true);
  auto clone = d.Clone();
  // Clone starts from the seed, so its first mask equals d's first mask.
  EXPECT_DOUBLE_EQ(clone->Forward(x, true).MaxAbsDiff(first), 0.0);
}

TEST(DropoutTest, NameShowsRate) {
  EXPECT_EQ(Dropout(0.2).Name(), "Dropout(0.20)");
}

TEST(DropoutDeathTest, InvalidRateAborts) {
  EXPECT_DEATH(Dropout(1.0), "rate");
  EXPECT_DEATH(Dropout(-0.1), "rate");
}

}  // namespace
}  // namespace tasfar
