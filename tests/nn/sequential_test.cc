#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "util/rng.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> SmallMlp(Rng* rng) {
  auto model = std::make_unique<Sequential>();
  model->Emplace<Dense>(3, 4, rng);
  model->Emplace<Relu>();
  model->Emplace<Dense>(4, 2, rng);
  return model;
}

TEST(SequentialTest, ForwardChainsLayers) {
  Rng rng(1);
  auto model = SmallMlp(&rng);
  Tensor x = Tensor::RandomNormal({5, 3}, &rng);
  Tensor y = model->Forward(x, false);
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 2u);
}

TEST(SequentialTest, NumLayersAndAccess) {
  Rng rng(2);
  auto model = SmallMlp(&rng);
  EXPECT_EQ(model->NumLayers(), 3u);
  EXPECT_EQ(model->layer(1).Name(), "Relu");
}

TEST(SequentialTest, ParamsConcatenateAcrossLayers) {
  Rng rng(3);
  auto model = SmallMlp(&rng);
  EXPECT_EQ(model->Params().size(), 4u);  // Two Dense layers, W + b each.
  EXPECT_EQ(model->Grads().size(), 4u);
  EXPECT_EQ(model->ParameterCount(), 3u * 4 + 4 + 4u * 2 + 2);
}

TEST(SequentialTest, BackwardProducesInputGradient) {
  Rng rng(4);
  auto model = SmallMlp(&rng);
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor y = model->Forward(x, true);
  Tensor g = model->Backward(Tensor::Ones(y.shape()));
  EXPECT_TRUE(g.SameShape(x));
}

TEST(SequentialTest, ForwardToStopsAtCut) {
  Rng rng(5);
  auto model = SmallMlp(&rng);
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor feat = model->ForwardTo(x, 2, false);
  EXPECT_EQ(feat.dim(1), 4u);  // After Dense(3->4) + Relu.
  // ForwardTo with cut = 0 is the identity.
  EXPECT_DOUBLE_EQ(model->ForwardTo(x, 0, false).MaxAbsDiff(x), 0.0);
}

TEST(SequentialTest, ForwardFromRunsTheHead) {
  Rng rng(6);
  auto model = SmallMlp(&rng);
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor feat = model->ForwardTo(x, 2, false);
  Tensor head_out = model->ForwardFrom(feat, 2, false);
  Tensor full_out = model->Forward(x, false);
  EXPECT_NEAR(head_out.MaxAbsDiff(full_out), 0.0, 1e-12);
}

TEST(SequentialTest, BackwardFromOnlyTouchesPrefixGrads) {
  Rng rng(7);
  auto model = SmallMlp(&rng);
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor feat = model->ForwardTo(x, 2, true);
  model->ZeroGrads();
  model->BackwardFrom(Tensor::Ones(feat.shape()), 2);
  auto grads = model->Grads();
  // First Dense touched, second untouched.
  EXPECT_GT(grads[0]->SquaredNorm(), 0.0);
  EXPECT_DOUBLE_EQ(grads[2]->SquaredNorm(), 0.0);
}

TEST(SequentialTest, CloneSequentialMatchesOutputs) {
  Rng rng(8);
  auto model = SmallMlp(&rng);
  auto clone = model->CloneSequential();
  Tensor x = Tensor::RandomNormal({3, 3}, &rng);
  EXPECT_DOUBLE_EQ(
      model->Forward(x, false).MaxAbsDiff(clone->Forward(x, false)), 0.0);
}

TEST(SequentialTest, CloneIsIndependent) {
  Rng rng(9);
  auto model = SmallMlp(&rng);
  auto clone = model->CloneSequential();
  (*clone->Params()[0])[0] += 10.0;
  EXPECT_NE((*clone->Params()[0])[0], (*model->Params()[0])[0]);
}

TEST(SequentialTest, CopyParamsFrom) {
  Rng rng(10);
  auto a = SmallMlp(&rng);
  auto b = SmallMlp(&rng);  // Different init.
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  EXPECT_GT(a->Forward(x, false).MaxAbsDiff(b->Forward(x, false)), 0.0);
  b->CopyParamsFrom(*a);
  EXPECT_DOUBLE_EQ(a->Forward(x, false).MaxAbsDiff(b->Forward(x, false)),
                   0.0);
}

TEST(SequentialTest, NameListsLayers) {
  Rng rng(11);
  auto model = SmallMlp(&rng);
  const std::string name = model->Name();
  EXPECT_NE(name.find("Dense(3->4)"), std::string::npos);
  EXPECT_NE(name.find("Relu"), std::string::npos);
}

TEST(SequentialTest, NestedSequentialWorks) {
  Rng rng(12);
  auto inner = std::make_unique<Sequential>();
  inner->Emplace<Dense>(3, 3, &rng);
  inner->Emplace<Relu>();
  Sequential outer;
  outer.Add(std::move(inner));
  outer.Emplace<Dense>(3, 1, &rng);
  Tensor x = Tensor::RandomNormal({2, 3}, &rng);
  Tensor y = outer.Forward(x, false);
  EXPECT_EQ(y.dim(1), 1u);
  EXPECT_EQ(outer.Params().size(), 4u);
}

TEST(SequentialTest, TrainingFlagPropagatesToDropout) {
  Rng rng(13);
  Sequential model;
  model.Emplace<Dropout>(0.5, 99);
  Tensor x = Tensor::Ones({10, 10});
  Tensor inference = model.Forward(x, false);
  EXPECT_DOUBLE_EQ(inference.MaxAbsDiff(x), 0.0);
  Tensor training = model.Forward(x, true);
  EXPECT_GT(training.MaxAbsDiff(x), 0.0);
}

}  // namespace
}  // namespace tasfar
