#include "nn/dense.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace tasfar {
namespace {

TEST(DenseTest, OutputShape) {
  Rng rng(1);
  Dense layer(4, 3, &rng);
  Tensor x({2, 4});
  Tensor y = layer.Forward(x, false);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 3u);
}

TEST(DenseTest, ZeroInputYieldsBias) {
  Rng rng(2);
  Dense layer(3, 2, &rng);
  layer.bias()[0] = 1.5;
  layer.bias()[1] = -0.5;
  Tensor y = layer.Forward(Tensor({1, 3}), false);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(y.At(0, 1), -0.5);
}

TEST(DenseTest, KnownWeightsComputeAffineMap) {
  Rng rng(3);
  Dense layer(2, 1, &rng);
  layer.weight().At(0, 0) = 2.0;
  layer.weight().At(1, 0) = -1.0;
  layer.bias()[0] = 0.5;
  Tensor x({1, 2}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(layer.Forward(x, false).At(0, 0), 2.0 * 3 - 4 + 0.5);
}

TEST(DenseTest, BackwardReturnsInputGradient) {
  Rng rng(4);
  Dense layer(2, 1, &rng);
  layer.weight().At(0, 0) = 2.0;
  layer.weight().At(1, 0) = 3.0;
  Tensor x({1, 2}, {1.0, 1.0});
  layer.Forward(x, true);
  Tensor g = layer.Backward(Tensor({1, 1}, {1.0}));
  EXPECT_DOUBLE_EQ(g.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.At(0, 1), 3.0);
}

TEST(DenseTest, BackwardAccumulatesWeightGradient) {
  Rng rng(5);
  Dense layer(2, 1, &rng);
  Tensor x({1, 2}, {5.0, 7.0});
  layer.Forward(x, true);
  layer.Backward(Tensor({1, 1}, {1.0}));
  EXPECT_DOUBLE_EQ((*layer.Grads()[0]).At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ((*layer.Grads()[0]).At(1, 0), 7.0);
  EXPECT_DOUBLE_EQ((*layer.Grads()[1])[0], 1.0);
  // Second backward accumulates.
  layer.Forward(x, true);
  layer.Backward(Tensor({1, 1}, {1.0}));
  EXPECT_DOUBLE_EQ((*layer.Grads()[0]).At(0, 0), 10.0);
}

TEST(DenseTest, ZeroGradsClears) {
  Rng rng(6);
  Dense layer(2, 2, &rng);
  layer.Forward(Tensor({1, 2}, {1.0, 1.0}), true);
  layer.Backward(Tensor({1, 2}, {1.0, 1.0}));
  layer.ZeroGrads();
  EXPECT_DOUBLE_EQ(layer.Grads()[0]->SquaredNorm(), 0.0);
  EXPECT_DOUBLE_EQ(layer.Grads()[1]->SquaredNorm(), 0.0);
}

TEST(DenseTest, CloneIsDeepCopy) {
  Rng rng(7);
  Dense layer(2, 2, &rng);
  auto clone = layer.Clone();
  auto* dense_clone = dynamic_cast<Dense*>(clone.get());
  ASSERT_NE(dense_clone, nullptr);
  dense_clone->weight().At(0, 0) = 99.0;
  EXPECT_NE(layer.weight().At(0, 0), 99.0);
}

TEST(DenseTest, CloneProducesSameOutputs) {
  Rng rng(8);
  Dense layer(3, 2, &rng);
  auto clone = layer.Clone();
  Rng data_rng(9);
  Tensor x = Tensor::RandomNormal({4, 3}, &data_rng);
  EXPECT_DOUBLE_EQ(
      layer.Forward(x, false).MaxAbsDiff(clone->Forward(x, false)), 0.0);
}

TEST(DenseTest, InitializationIsBounded) {
  Rng rng(10);
  Dense layer(100, 50, &rng);
  const double limit = std::sqrt(6.0 / 100.0);
  EXPECT_LE(layer.weight().Max(), limit);
  EXPECT_GE(layer.weight().Min(), -limit);
  // And not all-zero.
  EXPECT_GT(layer.weight().SquaredNorm(), 0.0);
}

TEST(DenseTest, NameDescribesShape) {
  Rng rng(11);
  EXPECT_EQ(Dense(16, 8, &rng).Name(), "Dense(16->8)");
}

TEST(DenseDeathTest, WrongInputWidthAborts) {
  Rng rng(12);
  Dense layer(4, 2, &rng);
  EXPECT_DEATH(layer.Forward(Tensor({1, 3}), false), "Dense expects");
}

TEST(DenseDeathTest, BackwardBeforeForwardAborts) {
  Rng rng(13);
  Dense layer(2, 2, &rng);
  EXPECT_DEATH(layer.Backward(Tensor({1, 2})), "Backward before Forward");
}

}  // namespace
}  // namespace tasfar
