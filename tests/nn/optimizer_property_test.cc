// Property-style sweep: every optimizer must train the same small
// regression problem to (near) convergence, and must behave sanely under
// gradient clipping and schedules.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/rmsprop.h"
#include "nn/trainer.h"

namespace tasfar {
namespace {

enum class OptKind { kSgd, kSgdMomentum, kAdam, kRmsProp };

class OptimizerPropertyTest : public ::testing::TestWithParam<OptKind> {
 protected:
  std::unique_ptr<Optimizer> Make() const {
    switch (GetParam()) {
      case OptKind::kSgd:
        return std::make_unique<Sgd>(0.05);
      case OptKind::kSgdMomentum:
        return std::make_unique<Sgd>(0.02, 0.9);
      case OptKind::kAdam:
        return std::make_unique<Adam>(0.02);
      case OptKind::kRmsProp:
        return std::make_unique<RmsProp>(0.01);
    }
    return nullptr;
  }
};

TEST_P(OptimizerPropertyTest, TrainsLinearRegressionToLowLoss) {
  Rng rng(5);
  Sequential model;
  model.Emplace<Dense>(3, 1, &rng);
  Tensor x = Tensor::RandomNormal({200, 3}, &rng);
  Tensor y({200, 1});
  for (size_t i = 0; i < 200; ++i) {
    y.At(i, 0) = 1.5 * x.At(i, 0) - 0.5 * x.At(i, 1) + 0.25;
  }
  auto opt = Make();
  Trainer trainer(&model, opt.get(),
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 150;
  tc.batch_size = 32;
  trainer.Fit(x, y, tc, &rng);
  EXPECT_LT(trainer.Evaluate(x, y), 1e-2);
}

TEST_P(OptimizerPropertyTest, GradientClippingStillConverges) {
  Rng rng(7);
  Sequential model;
  model.Emplace<Dense>(2, 1, &rng);
  Tensor x = Tensor::RandomNormal({100, 2}, &rng);
  Tensor y({100, 1});
  // Large-scale targets produce large gradients the clip must tame.
  for (size_t i = 0; i < 100; ++i) y.At(i, 0) = 50.0 * x.At(i, 0);
  auto opt = Make();
  Trainer trainer(&model, opt.get(),
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 400;
  tc.batch_size = 32;
  tc.clip_grad_norm = 5.0;
  auto history = trainer.Fit(x, y, tc, &rng);
  EXPECT_TRUE(std::isfinite(history.back().train_loss));
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
}

TEST_P(OptimizerPropertyTest, DropoutOffTrainingIsDeterministic) {
  // With shuffling and dropout both disabled, two identical runs produce
  // identical models regardless of the optimizer.
  auto run = [&](Sequential* model) {
    Rng rng(11);
    Tensor x = Tensor::RandomNormal({40, 2}, &rng);
    Tensor targets({40, 1});
    for (size_t i = 0; i < 40; ++i) targets.At(i, 0) = x.At(i, 0);
    auto opt = Make();
    Trainer trainer(model, opt.get(),
                    [](const Tensor& p, const Tensor& t, Tensor* g,
                       const std::vector<double>* w) {
                      return loss::Mse(p, t, g, w);
                    });
    TrainConfig tc;
    tc.epochs = 10;
    tc.shuffle = false;
    tc.dropout_during_training = false;
    Rng train_rng(13);
    trainer.Fit(x, targets, tc, &train_rng);
  };
  Rng ra(17), rb(17);
  Sequential a, b;
  a.Emplace<Dense>(2, 4, &ra);
  a.Emplace<Relu>();
  a.Emplace<Dense>(4, 1, &ra);
  b.Emplace<Dense>(2, 4, &rb);
  b.Emplace<Relu>();
  b.Emplace<Dense>(4, 1, &rb);
  run(&a);
  run(&b);
  auto pa = a.Params();
  auto pb = b.Params();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i]->MaxAbsDiff(*pb[i]), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerPropertyTest,
                         ::testing::Values(OptKind::kSgd,
                                           OptKind::kSgdMomentum,
                                           OptKind::kAdam,
                                           OptKind::kRmsProp),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case OptKind::kSgd:
                               return "Sgd";
                             case OptKind::kSgdMomentum:
                               return "SgdMomentum";
                             case OptKind::kAdam:
                               return "Adam";
                             case OptKind::kRmsProp:
                               return "RmsProp";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace tasfar
