#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tasfar {
namespace {

TEST(MseLossTest, PerfectPredictionIsZero) {
  Tensor p({2, 1}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(loss::Mse(p, p), 0.0);
}

TEST(MseLossTest, KnownValue) {
  Tensor p({2, 1}, {1.0, 3.0});
  Tensor t({2, 1}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(loss::Mse(p, t), (1.0 + 9.0) / 2.0);
}

TEST(MseLossTest, MultiDimSumsOverDims) {
  Tensor p({1, 2}, {1.0, 2.0});
  Tensor t({1, 2}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(loss::Mse(p, t), 5.0);
}

TEST(MseLossTest, GradientMatchesFiniteDifference) {
  Tensor p({2, 2}, {0.5, -1.0, 2.0, 0.0});
  Tensor t({2, 2}, {0.0, 0.0, 1.0, 1.0});
  Tensor grad;
  loss::Mse(p, t, &grad);
  const double eps = 1e-6;
  for (size_t i = 0; i < p.size(); ++i) {
    Tensor pp = p, pm = p;
    pp[i] += eps;
    pm[i] -= eps;
    const double numeric =
        (loss::Mse(pp, t) - loss::Mse(pm, t)) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-6);
  }
}

TEST(MseLossTest, WeightsScaleContributions) {
  Tensor p({2, 1}, {1.0, 1.0});
  Tensor t({2, 1}, {0.0, 0.0});
  std::vector<double> w{2.0, 0.0};
  EXPECT_DOUBLE_EQ(loss::Mse(p, t, nullptr, &w), 1.0);  // (2*1 + 0*1)/2.
}

TEST(MseLossTest, ZeroWeightZeroGradient) {
  Tensor p({1, 1}, {5.0});
  Tensor t({1, 1}, {0.0});
  std::vector<double> w{0.0};
  Tensor grad;
  loss::Mse(p, t, &grad, &w);
  EXPECT_DOUBLE_EQ(grad[0], 0.0);
}

TEST(MaeLossTest, KnownValue) {
  Tensor p({2, 1}, {1.0, -3.0});
  Tensor t({2, 1}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(loss::Mae(p, t), 2.0);
}

TEST(MaeLossTest, GradientIsSign) {
  Tensor p({1, 3}, {2.0, -2.0, 0.0});
  Tensor t({1, 3}, {0.0, 0.0, 0.0});
  Tensor grad;
  loss::Mae(p, t, &grad);
  EXPECT_DOUBLE_EQ(grad[0], 1.0);
  EXPECT_DOUBLE_EQ(grad[1], -1.0);
  EXPECT_DOUBLE_EQ(grad[2], 0.0);
}

TEST(MaeLossTest, WeightedMeanOverBatch) {
  Tensor p({2, 1}, {1.0, 1.0});
  Tensor t({2, 1}, {0.0, 0.0});
  std::vector<double> w{3.0, 1.0};
  EXPECT_DOUBLE_EQ(loss::Mae(p, t, nullptr, &w), 2.0);
}

TEST(HuberLossTest, QuadraticInsideDelta) {
  Tensor p({1, 1}, {0.5});
  Tensor t({1, 1}, {0.0});
  EXPECT_DOUBLE_EQ(loss::Huber(p, t, 1.0), 0.125);
}

TEST(HuberLossTest, LinearOutsideDelta) {
  Tensor p({1, 1}, {3.0});
  Tensor t({1, 1}, {0.0});
  // delta*(|d| - delta/2) = 1*(3 - 0.5) = 2.5.
  EXPECT_DOUBLE_EQ(loss::Huber(p, t, 1.0), 2.5);
}

TEST(HuberLossTest, GradientMatchesFiniteDifference) {
  Tensor p({2, 1}, {0.3, 4.0});
  Tensor t({2, 1}, {0.0, 0.0});
  Tensor grad;
  loss::Huber(p, t, 1.0, &grad);
  const double eps = 1e-6;
  for (size_t i = 0; i < p.size(); ++i) {
    Tensor pp = p, pm = p;
    pp[i] += eps;
    pm[i] -= eps;
    const double numeric =
        (loss::Huber(pp, t, 1.0) - loss::Huber(pm, t, 1.0)) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-6);
  }
}

TEST(BceLossTest, ConfidentCorrectIsNearZero) {
  Tensor p({1, 1}, {0.999999});
  Tensor t({1, 1}, {1.0});
  EXPECT_NEAR(loss::BinaryCrossEntropy(p, t), 0.0, 1e-5);
}

TEST(BceLossTest, HalfProbabilityIsLogTwo) {
  Tensor p({1, 1}, {0.5});
  Tensor t({1, 1}, {1.0});
  EXPECT_NEAR(loss::BinaryCrossEntropy(p, t), std::log(2.0), 1e-12);
}

TEST(BceLossTest, GradientMatchesFiniteDifference) {
  Tensor p({2, 1}, {0.3, 0.8});
  Tensor t({2, 1}, {1.0, 0.0});
  Tensor grad;
  loss::BinaryCrossEntropy(p, t, &grad);
  const double eps = 1e-7;
  for (size_t i = 0; i < p.size(); ++i) {
    Tensor pp = p, pm = p;
    pp[i] += eps;
    pm[i] -= eps;
    const double numeric = (loss::BinaryCrossEntropy(pp, t) -
                            loss::BinaryCrossEntropy(pm, t)) /
                           (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-5);
  }
}

TEST(BceLossTest, ExtremeProbabilitiesStayFinite) {
  Tensor p({2, 1}, {0.0, 1.0});
  Tensor t({2, 1}, {1.0, 0.0});
  Tensor grad;
  const double value = loss::BinaryCrossEntropy(p, t, &grad);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_TRUE(grad.AllFinite());
}

TEST(LossDeathTest, ShapeMismatchAborts) {
  Tensor p({2, 1});
  Tensor t({3, 1});
  EXPECT_DEATH(loss::Mse(p, t), "");
}

TEST(LossDeathTest, WrongWeightCountAborts) {
  Tensor p({2, 1});
  std::vector<double> w{1.0};
  EXPECT_DEATH(loss::Mse(p, p, nullptr, &w), "one weight per batch row");
}

}  // namespace
}  // namespace tasfar
