#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"

namespace tasfar {
namespace {

LossFn MseLoss() {
  return [](const Tensor& p, const Tensor& t, Tensor* g,
            const std::vector<double>* w) { return loss::Mse(p, t, g, w); };
}

TEST(GatherFirstDimTest, Rank2) {
  Tensor t({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherFirstDim(t, {2, 0});
  EXPECT_DOUBLE_EQ(g.At(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(g.At(1, 0), 1.0);
}

TEST(GatherFirstDimTest, Rank3PreservesTrailingShape) {
  Tensor t({2, 3, 4});
  t.At(1, 2, 3) = 9.0;
  Tensor g = GatherFirstDim(t, {1});
  EXPECT_EQ(g.shape(), (std::vector<size_t>{1, 3, 4}));
  EXPECT_DOUBLE_EQ(g.At(0, 2, 3), 9.0);
}

TEST(BatchedForwardTest, MatchesSingleForward) {
  Rng rng(1);
  Sequential model;
  model.Emplace<Dense>(3, 2, &rng);
  Tensor x = Tensor::RandomNormal({10, 3}, &rng);
  Tensor full = model.Forward(x, false);
  Tensor batched = BatchedForward(&model, x, false, /*batch_size=*/3);
  EXPECT_NEAR(full.MaxAbsDiff(batched), 0.0, 1e-12);
}

TEST(TrainerTest, LearnsLinearMap) {
  Rng rng(2);
  Sequential model;
  model.Emplace<Dense>(2, 1, &rng);
  // y = 3 x0 - 2 x1 + 1.
  Tensor x = Tensor::RandomNormal({200, 2}, &rng);
  Tensor y({200, 1});
  for (size_t i = 0; i < 200; ++i) {
    y.At(i, 0) = 3.0 * x.At(i, 0) - 2.0 * x.At(i, 1) + 1.0;
  }
  Adam opt(0.05);
  Trainer trainer(&model, &opt, MseLoss());
  TrainConfig tc;
  tc.epochs = 100;
  tc.batch_size = 32;
  trainer.Fit(x, y, tc, &rng);
  EXPECT_LT(trainer.Evaluate(x, y), 1e-3);
}

TEST(TrainerTest, LossHistoryDecreases) {
  Rng rng(3);
  Sequential model;
  model.Emplace<Dense>(2, 4, &rng);
  model.Emplace<Relu>();
  model.Emplace<Dense>(4, 1, &rng);
  Tensor x = Tensor::RandomNormal({100, 2}, &rng);
  Tensor y({100, 1});
  for (size_t i = 0; i < 100; ++i) y.At(i, 0) = x.At(i, 0) * x.At(i, 1);
  Adam opt(0.01);
  Trainer trainer(&model, &opt, MseLoss());
  TrainConfig tc;
  tc.epochs = 30;
  auto history = trainer.Fit(x, y, tc, &rng);
  ASSERT_EQ(history.size(), 30u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
}

TEST(TrainerTest, EarlyStoppingShortensHistory) {
  Rng rng(4);
  Sequential model;
  model.Emplace<Dense>(1, 1, &rng);
  // Trivial task converges instantly -> early stop kicks in.
  Tensor x = Tensor::RandomNormal({50, 1}, &rng);
  Tensor y = x;
  Adam opt(0.5);
  Trainer trainer(&model, &opt, MseLoss());
  TrainConfig tc;
  tc.epochs = 200;
  tc.early_stop_rel_drop = 0.01;
  tc.patience = 2;
  auto history = trainer.Fit(x, y, tc, &rng);
  EXPECT_LT(history.size(), 200u);
}

TEST(TrainerTest, SampleWeightsFocusTraining) {
  Rng rng(5);
  // Two conflicting clusters; weights select which one the model fits.
  Tensor x({40, 1});
  Tensor y({40, 1});
  std::vector<double> w(40);
  for (size_t i = 0; i < 40; ++i) {
    x.At(i, 0) = 1.0;
    y.At(i, 0) = (i < 20) ? 1.0 : -1.0;
    w[i] = (i < 20) ? 1.0 : 0.0;  // Only the +1 cluster counts.
  }
  Sequential model;
  model.Emplace<Dense>(1, 1, &rng);
  Adam opt(0.05);
  Trainer trainer(&model, &opt, MseLoss());
  TrainConfig tc;
  tc.epochs = 200;
  trainer.Fit(x, y, tc, &rng, &w);
  Tensor pred = model.Forward(Tensor({1, 1}, {1.0}), false);
  EXPECT_NEAR(pred.At(0, 0), 1.0, 0.05);
}

TEST(TrainerTest, EpochCallbackInvoked) {
  Rng rng(6);
  Sequential model;
  model.Emplace<Dense>(1, 1, &rng);
  Tensor x = Tensor::RandomNormal({10, 1}, &rng);
  Adam opt(0.01);
  Trainer trainer(&model, &opt, MseLoss());
  TrainConfig tc;
  tc.epochs = 5;
  size_t calls = 0;
  trainer.Fit(x, x, tc, &rng, nullptr,
              [&calls](const EpochStats& st) {
                EXPECT_EQ(st.epoch, calls);
                ++calls;
              });
  EXPECT_EQ(calls, 5u);
}

TEST(TrainerTest, BatchLargerThanDatasetClamped) {
  Rng rng(7);
  Sequential model;
  model.Emplace<Dense>(1, 1, &rng);
  Tensor x = Tensor::RandomNormal({5, 1}, &rng);
  Adam opt(0.01);
  Trainer trainer(&model, &opt, MseLoss());
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 100;
  auto history = trainer.Fit(x, x, tc, &rng);
  EXPECT_EQ(history.size(), 2u);
}

TEST(TrainerDeathTest, MismatchedRowsAbort) {
  Rng rng(8);
  Sequential model;
  model.Emplace<Dense>(1, 1, &rng);
  Adam opt(0.01);
  Trainer trainer(&model, &opt, MseLoss());
  TrainConfig tc;
  EXPECT_DEATH(trainer.Fit(Tensor({4, 1}), Tensor({3, 1}), tc, &rng), "");
}

}  // namespace
}  // namespace tasfar
