#include "nn/softmax.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.h"
#include "nn/gradient_check.h"
#include "util/rng.h"

namespace tasfar {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Softmax sm;
  Rng rng(1);
  Tensor x = Tensor::RandomNormal({5, 4}, &rng, 0.0, 3.0);
  Tensor p = sm.Forward(x, false);
  for (size_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_GT(p.At(i, c), 0.0);
      row += p.At(i, c);
    }
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, UniformLogitsGiveUniformProbs) {
  Softmax sm;
  Tensor x = Tensor::Full({2, 5}, 3.7);
  Tensor p = sm.Forward(x, false);
  for (size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(p[i], 0.2, 1e-12);
}

TEST(SoftmaxTest, ShiftInvariant) {
  Softmax sm;
  Rng rng(2);
  Tensor x = Tensor::RandomNormal({3, 4}, &rng);
  Tensor p1 = sm.Forward(x, false);
  Tensor p2 = sm.Forward(x + 100.0, false);
  EXPECT_NEAR(p1.MaxAbsDiff(p2), 0.0, 1e-12);
}

TEST(SoftmaxTest, StableForExtremeLogits) {
  Softmax sm;
  Tensor x({1, 3}, {1000.0, -1000.0, 0.0});
  Tensor p = sm.Forward(x, false);
  EXPECT_TRUE(p.AllFinite());
  EXPECT_NEAR(p.At(0, 0), 1.0, 1e-12);
}

TEST(SoftmaxTest, GradientMatchesFiniteDifferenceUnderCrossEntropy) {
  Rng rng(3);
  Sequential model;
  model.Emplace<Dense>(3, 4, &rng);
  model.Emplace<Softmax>();
  Tensor x = Tensor::RandomNormal({4, 3}, &rng);
  Tensor target({4, 4});
  for (size_t i = 0; i < 4; ++i) target.At(i, i % 4) = 1.0;
  GradCheckResult result = CheckGradients(
      &model, x, target,
      [](const Tensor& p, const Tensor& t, Tensor* g,
         const std::vector<double>* w) {
        return loss::CrossEntropy(p, t, g, w);
      });
  EXPECT_LT(result.max_rel_error, 1e-4);
}

TEST(CrossEntropyTest, PerfectOneHotPredictionIsZero) {
  Tensor p({2, 3}, {1.0, 0.0, 0.0, 0.0, 1.0, 0.0});
  Tensor t = p;
  EXPECT_NEAR(loss::CrossEntropy(p, t), 0.0, 1e-10);
}

TEST(CrossEntropyTest, UniformPredictionIsLogClasses) {
  Tensor p = Tensor::Full({1, 4}, 0.25);
  Tensor t({1, 4}, {1.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(loss::CrossEntropy(p, t), std::log(4.0), 1e-12);
}

TEST(CrossEntropyTest, SoftTargetsSupported) {
  // Cross-entropy against a soft pseudo-label (the Section-VI plug-in's
  // training signal) equals the weighted sum of per-class terms.
  Tensor p({1, 2}, {0.7, 0.3});
  Tensor t({1, 2}, {0.6, 0.4});
  const double expected = -(0.6 * std::log(0.7) + 0.4 * std::log(0.3));
  EXPECT_NEAR(loss::CrossEntropy(p, t), expected, 1e-12);
}

TEST(CrossEntropyTest, WeightsScaleContribution) {
  Tensor p({2, 2}, {0.5, 0.5, 0.5, 0.5});
  Tensor t({2, 2}, {1.0, 0.0, 1.0, 0.0});
  std::vector<double> w{2.0, 0.0};
  EXPECT_NEAR(loss::CrossEntropy(p, t, nullptr, &w), std::log(2.0), 1e-12);
}

TEST(CrossEntropyTest, ZeroProbabilityGuarded) {
  Tensor p({1, 2}, {0.0, 1.0});
  Tensor t({1, 2}, {1.0, 0.0});
  Tensor grad;
  const double value = loss::CrossEntropy(p, t, &grad);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_TRUE(grad.AllFinite());
}

}  // namespace
}  // namespace tasfar
