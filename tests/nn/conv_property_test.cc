// Property-style checks of the convolutions against naive reference
// implementations across stride/padding/dilation combinations.

#include <gtest/gtest.h>

#include <tuple>

#include "nn/conv1d.h"
#include "nn/conv2d.h"
#include "util/rng.h"

namespace tasfar {
namespace {

// --- Conv1d reference ---------------------------------------------------

double RefConv1dAt(const Tensor& x, const Tensor& w, const Tensor& b,
                   size_t batch, size_t oc, size_t to, size_t stride,
                   size_t padding, size_t dilation) {
  double acc = b[oc];
  const size_t in_ch = x.dim(1), t_in = x.dim(2), kernel = w.dim(2);
  for (size_t ic = 0; ic < in_ch; ++ic) {
    for (size_t k = 0; k < kernel; ++k) {
      const long ti = static_cast<long>(to * stride + k * dilation) -
                      static_cast<long>(padding);
      if (ti < 0 || ti >= static_cast<long>(t_in)) continue;
      acc += w.At(oc, ic, k) * x.At(batch, ic, static_cast<size_t>(ti));
    }
  }
  return acc;
}

using Conv1dParam = std::tuple<size_t /*stride*/, size_t /*pad*/,
                               size_t /*dilation*/, size_t /*kernel*/>;

class Conv1dPropertyTest : public ::testing::TestWithParam<Conv1dParam> {};

TEST_P(Conv1dPropertyTest, ForwardMatchesReference) {
  const auto stride = std::get<0>(GetParam());
  const auto pad = std::get<1>(GetParam());
  const auto dilation = std::get<2>(GetParam());
  const auto kernel = std::get<3>(GetParam());
  Rng rng(stride * 100 + pad * 10 + dilation + kernel);
  Conv1d conv(3, 2, kernel, &rng, stride, pad, dilation);
  Tensor x = Tensor::RandomNormal({2, 3, 12}, &rng);
  Tensor y = conv.Forward(x, false);
  const Tensor& w = *conv.Params()[0];
  const Tensor& b = *conv.Params()[1];
  for (size_t n = 0; n < y.dim(0); ++n) {
    for (size_t oc = 0; oc < y.dim(1); ++oc) {
      for (size_t to = 0; to < y.dim(2); ++to) {
        EXPECT_NEAR(y.At(n, oc, to),
                    RefConv1dAt(x, w, b, n, oc, to, stride, pad, dilation),
                    1e-10);
      }
    }
  }
}

TEST_P(Conv1dPropertyTest, BackwardIsLinearInUpstreamGradient) {
  // Backward(g1 + g2) == Backward(g1) + Backward(g2) for the input grad,
  // and parameter grads accumulate identically.
  const auto stride = std::get<0>(GetParam());
  const auto pad = std::get<1>(GetParam());
  const auto dilation = std::get<2>(GetParam());
  const auto kernel = std::get<3>(GetParam());
  Rng rng(stride + pad * 7 + dilation * 13 + kernel * 29);
  Conv1d conv(2, 3, kernel, &rng, stride, pad, dilation);
  Tensor x = Tensor::RandomNormal({1, 2, 12}, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor g1 = Tensor::RandomNormal(y.shape(), &rng);
  Tensor g2 = Tensor::RandomNormal(y.shape(), &rng);

  conv.ZeroGrads();
  Tensor gi_sum = conv.Backward(g1 + g2);
  Tensor gw_sum = *conv.Grads()[0];

  conv.ZeroGrads();
  Tensor gi_split = conv.Backward(g1);
  gi_split += conv.Backward(g2);
  Tensor gw_split = *conv.Grads()[0];

  EXPECT_NEAR(gi_sum.MaxAbsDiff(gi_split), 0.0, 1e-10);
  EXPECT_NEAR(gw_sum.MaxAbsDiff(gw_split), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conv1dPropertyTest,
    ::testing::Values(Conv1dParam{1, 0, 1, 3}, Conv1dParam{1, 1, 1, 3},
                      Conv1dParam{2, 0, 1, 3}, Conv1dParam{1, 2, 2, 3},
                      Conv1dParam{2, 2, 2, 5}, Conv1dParam{1, 0, 3, 2},
                      Conv1dParam{3, 1, 1, 4}),
    [](const auto& param_info) {
      return "s" + std::to_string(std::get<0>(param_info.param)) + "p" +
             std::to_string(std::get<1>(param_info.param)) + "d" +
             std::to_string(std::get<2>(param_info.param)) + "k" +
             std::to_string(std::get<3>(param_info.param));
    });

// --- Conv2d reference ---------------------------------------------------

using Conv2dParam = std::tuple<size_t /*stride*/, size_t /*pad*/,
                               size_t /*kernel*/>;

class Conv2dPropertyTest : public ::testing::TestWithParam<Conv2dParam> {};

TEST_P(Conv2dPropertyTest, ForwardMatchesReference) {
  const auto stride = std::get<0>(GetParam());
  const auto pad = std::get<1>(GetParam());
  const auto kernel = std::get<2>(GetParam());
  Rng rng(stride * 31 + pad * 7 + kernel);
  Conv2d conv(2, 2, kernel, &rng, stride, pad);
  Tensor x = Tensor::RandomNormal({1, 2, 8, 8}, &rng);
  Tensor y = conv.Forward(x, false);
  const Tensor& w = *conv.Params()[0];
  const Tensor& b = *conv.Params()[1];
  for (size_t oc = 0; oc < y.dim(1); ++oc) {
    for (size_t ho = 0; ho < y.dim(2); ++ho) {
      for (size_t wo = 0; wo < y.dim(3); ++wo) {
        double ref = b[oc];
        for (size_t ic = 0; ic < 2; ++ic) {
          for (size_t kh = 0; kh < kernel; ++kh) {
            for (size_t kw = 0; kw < kernel; ++kw) {
              const long hi = static_cast<long>(ho * stride + kh) -
                              static_cast<long>(pad);
              const long wi = static_cast<long>(wo * stride + kw) -
                              static_cast<long>(pad);
              if (hi < 0 || hi >= 8 || wi < 0 || wi >= 8) continue;
              ref += w.At(oc, ic, kh, kw) *
                     x.At(0, ic, static_cast<size_t>(hi),
                          static_cast<size_t>(wi));
            }
          }
        }
        EXPECT_NEAR(y.At(0, oc, ho, wo), ref, 1e-10);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conv2dPropertyTest,
    ::testing::Values(Conv2dParam{1, 0, 3}, Conv2dParam{1, 1, 3},
                      Conv2dParam{2, 0, 3}, Conv2dParam{2, 2, 5},
                      Conv2dParam{1, 0, 1}, Conv2dParam{3, 1, 2}),
    [](const auto& param_info) {
      return "s" + std::to_string(std::get<0>(param_info.param)) + "p" +
             std::to_string(std::get<1>(param_info.param)) + "k" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace tasfar
