// Golden end-to-end determinism (ISSUE 4): the full TASFAR pipeline —
// source training → calibration → confidence split → density map →
// pseudo-labels → weighted fine-tuning — on a fixed-seed housing_sim
// target must be byte-identical across repeated runs and across thread
// counts. PR 2 proved layer-level equality; this pins the whole pipeline:
// pseudo-label values, credibilities, and the serialized final weights are
// compared as exact doubles / exact bytes, no tolerances.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/tasfar.h"
#include "data/housing_sim.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "util/thread_pool.h"

namespace tasfar {
namespace {

/// Everything the pipeline produces, captured in comparable form.
struct GoldenRun {
  std::string source_weights;   ///< SerializeParams of the trained source.
  std::string adapted_weights;  ///< SerializeParams of the adapted model.
  double tau = 0.0;
  std::vector<size_t> uncertain_indices;
  std::vector<double> pseudo_values;
  std::vector<double> credibilities;
  bool skipped = false;
  bool fell_back = false;
};

GoldenRun RunPipeline() {
  HousingSimConfig sim_cfg;
  sim_cfg.source_samples = 240;
  sim_cfg.target_samples = 120;
  HousingSimulator sim(sim_cfg, /*seed=*/77);
  Dataset source = sim.GenerateSource();
  Dataset target = sim.GenerateTarget();
  Normalizer norm;
  norm.Fit(source.inputs);
  const Tensor src_x = norm.Apply(source.inputs);
  const Tensor tgt_x = norm.Apply(target.inputs);

  Rng rng(101);
  auto model = BuildTabularModel(kNumHousingFeatures, &rng);
  Adam opt(1e-3);
  Trainer trainer(model.get(), &opt,
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  trainer.Fit(src_x, source.targets, tc, &rng);

  TasfarOptions options;
  options.mc_samples = 8;
  options.num_segments = 10;
  options.adaptation.train.epochs = 8;
  Tasfar tasfar(options);
  const SourceCalibration calib =
      tasfar.Calibrate(model.get(), src_x, source.targets);
  Rng adapt_rng(202);
  TasfarReport report = tasfar.Adapt(model.get(), calib, tgt_x, &adapt_rng);

  GoldenRun run;
  run.source_weights = SerializeParams(model.get());
  run.adapted_weights = SerializeParams(report.target_model.get());
  run.tau = report.tau;
  run.uncertain_indices = report.uncertain_indices;
  for (const PseudoLabel& pl : report.pseudo_labels) {
    for (double v : pl.value) run.pseudo_values.push_back(v);
    run.credibilities.push_back(pl.credibility);
  }
  run.skipped = report.skipped;
  run.fell_back = report.fell_back;
  return run;
}

/// Exact comparison — serialized weights are hex-float strings, so string
/// equality is bit equality of every parameter.
void ExpectIdentical(const GoldenRun& a, const GoldenRun& b,
                     const std::string& what) {
  EXPECT_EQ(a.source_weights, b.source_weights) << what;
  EXPECT_EQ(a.adapted_weights, b.adapted_weights) << what;
  EXPECT_EQ(a.tau, b.tau) << what;
  EXPECT_EQ(a.uncertain_indices, b.uncertain_indices) << what;
  EXPECT_EQ(a.pseudo_values, b.pseudo_values) << what;
  EXPECT_EQ(a.credibilities, b.credibilities) << what;
}

class GoldenPipelineTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(0); }  // Restore default pool.
};

TEST_F(GoldenPipelineTest, RepeatedRunsAreByteIdentical) {
  const GoldenRun first = RunPipeline();
  // The fixture must exercise the real pipeline, not a degenerate skip.
  ASSERT_FALSE(first.skipped);
  ASSERT_FALSE(first.fell_back);
  ASSERT_FALSE(first.pseudo_values.empty());
  ASSERT_NE(first.adapted_weights, first.source_weights);
  const GoldenRun second = RunPipeline();
  ExpectIdentical(first, second, "repeat run");
}

TEST_F(GoldenPipelineTest, ThreadCountDoesNotChangeAnyByte) {
  SetNumThreads(1);
  const GoldenRun t1 = RunPipeline();
  ASSERT_FALSE(t1.skipped);
  SetNumThreads(2);
  const GoldenRun t2 = RunPipeline();
  SetNumThreads(8);
  const GoldenRun t8 = RunPipeline();
  ExpectIdentical(t1, t2, "1 vs 2 threads");
  ExpectIdentical(t1, t8, "1 vs 8 threads");
}

}  // namespace
}  // namespace tasfar
