// End-to-end determinism: two independent harness instances with the same
// configuration must produce bit-identical source models, calibrations,
// and adapted target models. This is what makes every bench figure
// reproducible run-to-run.

#include <gtest/gtest.h>

#include "eval/pdr_harness.h"

namespace tasfar {
namespace {

PdrHarnessConfig TinyConfig() {
  PdrHarnessConfig cfg;
  cfg.sim.num_seen_users = 2;
  cfg.sim.num_unseen_users = 0;
  cfg.sim.source_steps_per_user = 60;
  cfg.sim.target_trajectories_seen = 3;
  cfg.sim.steps_per_trajectory = 20;
  cfg.source_epochs = 6;
  cfg.tasfar.mc_samples = 6;
  cfg.tasfar.adaptation.train.epochs = 10;
  return cfg;
}

TEST(ReproducibilityTest, HarnessIsBitDeterministic) {
  PdrHarness a(TinyConfig());
  PdrHarness b(TinyConfig());
  a.Prepare();
  b.Prepare();

  // Identical calibration.
  EXPECT_DOUBLE_EQ(a.calibration().tau, b.calibration().tau);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_DOUBLE_EQ(a.calibration().qs_per_dim[d].line.slope,
                     b.calibration().qs_per_dim[d].line.slope);
    EXPECT_DOUBLE_EQ(a.calibration().qs_per_dim[d].line.intercept,
                     b.calibration().qs_per_dim[d].line.intercept);
  }

  // Identical source models.
  auto pa = a.source_model()->Params();
  auto pb = b.source_model()->Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i]->MaxAbsDiff(*pb[i]), 0.0);
  }

  // Identical adaptation outcomes, down to the learning curves.
  PdrUserCache ca = a.BuildUserCache(a.users()[0]);
  PdrUserCache cb = b.BuildUserCache(b.users()[0]);
  TasfarReport ra, rb;
  PdrSchemeEval ea = a.EvaluateTasfar(ca, &ra);
  PdrSchemeEval eb = b.EvaluateTasfar(cb, &rb);
  EXPECT_DOUBLE_EQ(ea.ste_adapt_after, eb.ste_adapt_after);
  EXPECT_DOUBLE_EQ(ea.ste_test_after, eb.ste_test_after);
  EXPECT_EQ(ra.num_uncertain, rb.num_uncertain);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (size_t e = 0; e < ra.history.size(); ++e) {
    EXPECT_DOUBLE_EQ(ra.history[e].train_loss, rb.history[e].train_loss);
  }
}

TEST(ReproducibilityTest, DifferentSeedsDifferentModels) {
  PdrHarnessConfig cfg1 = TinyConfig();
  PdrHarnessConfig cfg2 = TinyConfig();
  cfg2.seed = cfg1.seed + 1;
  PdrHarness a(cfg1);
  PdrHarness b(cfg2);
  a.Prepare();
  b.Prepare();
  EXPECT_GT(a.source_model()->Params()[0]->MaxAbsDiff(
                *b.source_model()->Params()[0]),
            0.0);
}

}  // namespace
}  // namespace tasfar
