#include <gtest/gtest.h>

#include "data/housing_sim.h"
#include "data/taxi_sim.h"
#include "eval/crowd_harness.h"
#include "eval/pdr_harness.h"
#include "eval/tabular_harness.h"

namespace tasfar {
namespace {

// Deliberately tiny configurations: these tests exercise the full
// pipelines (simulate → train → calibrate → adapt → evaluate) for
// correctness, not for the paper-scale numbers (the benches do that).

TEST(EndToEndTabularTest, HousingTasfarImprovesTargetMetric) {
  HousingSimConfig sim;
  sim.source_samples = 1200;
  sim.target_samples = 600;
  HousingSimulator simulator(sim, 31);

  TabularHarnessConfig cfg;
  cfg.task_name = "housing-mini";
  cfg.metric = TabularMetric::kMse;
  cfg.source_epochs = 25;
  cfg.tasfar.mc_samples = 12;
  cfg.tasfar.grid_cell_size = 0.05;  // Standardized label units.
  cfg.tasfar.adaptation.train.epochs = 30;
  TabularHarness harness(cfg, simulator.GenerateSource(),
                         simulator.GenerateTarget());
  harness.Prepare();

  TasfarReport report;
  TabularEval eval = harness.EvaluateTasfar(&report);
  EXPECT_FALSE(report.skipped);
  EXPECT_GT(report.num_uncertain, 0u);
  EXPECT_GT(report.num_confident, 0u);
  // The headline claim: adaptation reduces target error, on both the
  // adaptation and the held-out test split.
  EXPECT_LT(eval.metric_adapt_after, eval.metric_adapt_before);
  EXPECT_LT(eval.metric_test_after, eval.metric_test_before);
}

TEST(EndToEndTabularTest, TaxiPipelineRunsWithRmsle) {
  TaxiSimConfig sim;
  sim.source_samples = 1000;
  sim.target_samples = 500;
  TaxiSimulator simulator(sim, 37);

  TabularHarnessConfig cfg;
  cfg.task_name = "taxi-mini";
  cfg.metric = TabularMetric::kRmsle;
  cfg.source_epochs = 20;
  cfg.tasfar.mc_samples = 10;
  cfg.tasfar.grid_cell_size = 0.05;  // Standardized label units.
  cfg.tasfar.adaptation.train.epochs = 25;
  TabularHarness harness(cfg, simulator.GenerateSource(),
                         simulator.GenerateTarget());
  harness.Prepare();

  TabularEval eval = harness.EvaluateTasfar();
  EXPECT_GT(eval.metric_adapt_before, 0.0);
  EXPECT_LT(eval.metric_adapt_after, eval.metric_adapt_before);
}

TEST(EndToEndPdrTest, HarnessAdaptsOneUser) {
  PdrHarnessConfig cfg;
  cfg.sim.num_seen_users = 3;
  cfg.sim.num_unseen_users = 1;
  cfg.sim.source_steps_per_user = 80;
  cfg.sim.target_trajectories_seen = 4;
  cfg.sim.target_trajectories_unseen = 4;
  cfg.sim.steps_per_trajectory = 30;
  cfg.source_epochs = 12;
  cfg.tasfar.mc_samples = 10;
  cfg.tasfar.grid_cell_size = 0.1;
  cfg.tasfar.adaptation.train.epochs = 25;
  PdrHarness harness(cfg);
  harness.Prepare();
  ASSERT_EQ(harness.users().size(), 4u);

  PdrUserCache cache = harness.BuildUserCache(harness.users()[0]);
  EXPECT_EQ(cache.adapt_preds.size(), cache.adapt_pool.size());

  TasfarReport report;
  PdrSchemeEval eval = harness.EvaluateTasfar(cache, &report);
  EXPECT_GT(eval.ste_adapt_before, 0.0);
  EXPECT_GT(eval.ste_test_before, 0.0);
  EXPECT_EQ(eval.rte_test_before.size(), cache.user.test.size());
  if (!report.skipped) {
    EXPECT_EQ(report.pseudo_labels.size(), report.num_uncertain);
    EXPECT_TRUE(report.density_map.has_value());
    EXPECT_EQ(report.density_map->num_dims(), 2u);
  }
}

TEST(EndToEndPdrTest, PseudoLabelQualityBeatsRawPredictions) {
  PdrHarnessConfig cfg;
  cfg.sim.num_seen_users = 4;
  cfg.sim.num_unseen_users = 0;
  cfg.sim.source_steps_per_user = 100;
  cfg.sim.target_trajectories_seen = 5;
  cfg.sim.steps_per_trajectory = 40;
  cfg.source_epochs = 15;
  cfg.tasfar.mc_samples = 12;
  PdrHarness harness(cfg);
  harness.Prepare();

  // Averaged over users, the density-map pseudo-labels should be at least
  // as good as the raw source predictions on the uncertain set.
  double pseudo = 0.0, pred = 0.0;
  size_t counted = 0;
  for (const PdrUserData& user : harness.users()) {
    PdrUserCache cache = harness.BuildUserCache(user);
    PseudoLabelEval eval = harness.PseudoLabelQuality(
        cache, harness.calibration(), 0.1, ErrorModelKind::kGaussian);
    if (eval.num_uncertain == 0) continue;
    pseudo += eval.pseudo_mae;
    pred += eval.pred_mae;
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_LT(pseudo, pred * 1.05);
}

TEST(EndToEndCrowdTest, HarnessProducesTableOneRows) {
  CrowdHarnessConfig cfg;
  cfg.sim.image_size = 16;
  cfg.sim.part_a_images = 60;
  cfg.sim.part_b_images = 90;
  cfg.source_epochs = 8;
  cfg.tasfar.mc_samples = 8;
  cfg.tasfar.grid_cell_size = 0.1;  // log1p(count) units.
  cfg.tasfar.adaptation.train.epochs = 10;
  cfg.tasfar.adaptation.learning_rate = 1e-4;
  CrowdHarness harness(cfg);
  harness.Prepare();

  std::vector<CrowdSceneData> scenes = harness.BuildScenes();
  ASSERT_EQ(scenes.size(), 3u);
  const CrowdSceneData& scene = scenes[0];
  CrowdEval before = harness.Evaluate(harness.source_model(), scene);
  EXPECT_GT(before.mae_adapt_whole, 0.0);
  EXPECT_GE(before.mse_adapt_whole, before.mae_adapt_whole);

  auto adapted = harness.AdaptTasfar(scene, nullptr);
  ASSERT_NE(adapted, nullptr);
  CrowdEval after = harness.Evaluate(adapted.get(), scene);
  EXPECT_GT(after.mae_test, 0.0);

  CrowdSceneData pooled = harness.BuildPooledScene();
  EXPECT_EQ(pooled.adapt.size() + pooled.test.size(), 90u);
}

}  // namespace
}  // namespace tasfar
