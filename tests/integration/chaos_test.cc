// Per-site chaos coverage (ISSUE 4): for every failpoint in the adaptation
// path, an injected fault must degrade gracefully — the pipeline returns
// the unmodified source model (or a valid rollback snapshot), the
// `tasfar.adapt.fallback` counter records it, and the process exits 0.
// The fixture is the 1-D domain-gap regression problem from
// tasfar_pipeline_test, trained once for the whole suite.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/tasfar.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace tasfar {
namespace {

class ChaosPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(11);
    model_ = new std::unique_ptr<Sequential>(std::make_unique<Sequential>());
    Sequential* model = model_->get();
    model->Emplace<Dense>(1, 24, &rng);
    model->Emplace<Relu>();
    model->Emplace<Dropout>(0.2, rng.NextU64());
    model->Emplace<Dense>(24, 1, &rng);

    const size_t n = 300;
    src_x_ = new Tensor({n, 1});
    src_y_ = new Tensor({n, 1});
    Tensor& src_x = *src_x_;
    Tensor& src_y = *src_y_;
    for (size_t i = 0; i < n; ++i) {
      const double x = rng.Uniform(-2.0, 2.0);
      src_x.At(i, 0) = x;
      src_y.At(i, 0) = x + rng.Normal(0.0, 0.05);
    }
    Adam opt(0.01);
    Trainer trainer(model, &opt,
                    [](const Tensor& p, const Tensor& t, Tensor* g,
                       const std::vector<double>* w) {
                      return loss::Mse(p, t, g, w);
                    });
    TrainConfig tc;
    tc.epochs = 40;
    trainer.Fit(src_x, src_y, tc, &rng);

    const size_t nt = 150;
    tgt_x_ = new Tensor({nt, 1});
    for (size_t i = 0; i < nt; ++i) {
      const bool ood = i % 3 == 0;
      tgt_x_->At(i, 0) = ood ? rng.Uniform(3.0, 4.5) : rng.Uniform(1.5, 2.0);
    }

    TasfarOptions options;
    options.mc_samples = 10;
    options.num_segments = 10;
    options.adaptation.train.epochs = 15;
    options.adaptation.learning_rate = 2e-3;
    tasfar_ = new Tasfar(options);
    calib_ = new SourceCalibration(
        tasfar_->Calibrate(model, src_x, src_y));
    source_weights_ = new std::string(SerializeParams(model));
  }

  static void TearDownTestSuite() {
    delete source_weights_;
    delete calib_;
    delete tasfar_;
    delete tgt_x_;
    delete src_y_;
    delete src_x_;
    delete model_;
  }

  void SetUp() override { obs::SetMetricsEnabled(true); }

  void TearDown() override {
    failpoint::Disable();
    obs::SetMetricsEnabled(false);
  }

  /// Adapts under the given failpoint spec; reports how many times the
  /// source-model fallback fired during the call.
  TasfarReport AdaptUnderFault(const std::string& spec, uint64_t seed,
                               uint64_t* fallback_delta) {
    TASFAR_CHECK(failpoint::Configure(spec).ok());
    obs::Counter* const fallback =
        obs::Registry::Get().GetCounter("tasfar.adapt.fallback");
    const uint64_t before = fallback->value();
    Rng rng(seed);
    TasfarReport report =
        tasfar_->Adapt(model_->get(), *calib_, *tgt_x_, &rng);
    failpoint::Disable();
    *fallback_delta = fallback->value() - before;
    return report;
  }

  /// AdaptUnderFault with a non-default uncertainty backend: builds a
  /// fresh Tasfar over the shared source model, recalibrates with that
  /// backend (faults disabled — the fault under test targets Adapt), then
  /// adapts under the failpoint spec.
  TasfarReport AdaptBackendUnderFault(UncertaintyBackend backend,
                                      const std::string& spec, uint64_t seed,
                                      uint64_t* fallback_delta) {
    TasfarOptions options;
    options.mc_samples = 10;
    options.num_segments = 10;
    options.adaptation.train.epochs = 15;
    options.adaptation.learning_rate = 2e-3;
    options.uncertainty_backend = backend;
    Tasfar tasfar(options);
    SourceCalibration calib =
        tasfar.Calibrate(model_->get(), *src_x_, *src_y_);
    TASFAR_CHECK(failpoint::Configure(spec).ok());
    obs::Counter* const fallback =
        obs::Registry::Get().GetCounter("tasfar.adapt.fallback");
    const uint64_t before = fallback->value();
    Rng rng(seed);
    TasfarReport report = tasfar.Adapt(model_->get(), calib, *tgt_x_, &rng);
    failpoint::Disable();
    *fallback_delta = fallback->value() - before;
    return report;
  }

  /// The never-worse-than-source guarantee, bit-exact.
  void ExpectReturnsSourceModel(const TasfarReport& report) {
    ASSERT_NE(report.target_model, nullptr);
    EXPECT_EQ(SerializeParams(report.target_model.get()), *source_weights_);
  }

  static std::unique_ptr<Sequential>* model_;
  static Tensor* src_x_;
  static Tensor* src_y_;
  static Tensor* tgt_x_;
  static Tasfar* tasfar_;
  static SourceCalibration* calib_;
  static std::string* source_weights_;
};

std::unique_ptr<Sequential>* ChaosPipelineTest::model_ = nullptr;
Tensor* ChaosPipelineTest::src_x_ = nullptr;
Tensor* ChaosPipelineTest::src_y_ = nullptr;
Tensor* ChaosPipelineTest::tgt_x_ = nullptr;
Tasfar* ChaosPipelineTest::tasfar_ = nullptr;
SourceCalibration* ChaosPipelineTest::calib_ = nullptr;
std::string* ChaosPipelineTest::source_weights_ = nullptr;

TEST_F(ChaosPipelineTest, HealthyRunAdaptsWithoutFallback) {
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("off", 31, &delta);
  EXPECT_EQ(delta, 0u);
  ASSERT_FALSE(report.skipped);
  EXPECT_FALSE(report.fell_back);
  EXPECT_NE(SerializeParams(report.target_model.get()), *source_weights_);
}

TEST_F(ChaosPipelineTest, StageFaultFallsBackToSource) {
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("tasfar.stage_fault", 37, &delta);
  EXPECT_EQ(delta, 1u);
  EXPECT_TRUE(report.fell_back);
  EXPECT_NE(report.fallback_reason.find("stage_fault"), std::string::npos);
  ExpectReturnsSourceModel(report);
}

TEST_F(ChaosPipelineTest, DegenerateDensityMapFallsBack) {
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("density.degenerate", 41, &delta);
  EXPECT_EQ(delta, 1u);
  EXPECT_TRUE(report.fell_back);
  EXPECT_NE(report.fallback_reason.find("density"), std::string::npos);
  ExpectReturnsSourceModel(report);
}

TEST_F(ChaosPipelineTest, PoisonedOptimizerStepsFallBack) {
  // Every step writes NaN into the weights, so no finite snapshot ever
  // exists: diverged, not rolled back, source model returned.
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("optimizer.step.poison", 43, &delta);
  EXPECT_EQ(delta, 1u);
  EXPECT_TRUE(report.diverged);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_TRUE(report.fell_back);
  ExpectReturnsSourceModel(report);
}

TEST_F(ChaosPipelineTest, PoisonedLossFallsBack) {
  // Every batch loss is NaN → every batch skipped → epoch loss NaN →
  // divergence with no snapshot → fallback.
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("loss.poison", 47, &delta);
  EXPECT_EQ(delta, 1u);
  EXPECT_TRUE(report.diverged);
  EXPECT_TRUE(report.fell_back);
  ExpectReturnsSourceModel(report);
}

TEST_F(ChaosPipelineTest, PoisonedMatMulFallsBack) {
  // Poisoning every GEMM corrupts some MC predictions (dropped) and every
  // training batch (skipped) — the run cannot produce a usable model and
  // must land on the source fallback.
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("tensor.matmul.poison", 53, &delta);
  EXPECT_EQ(delta, 1u);
  EXPECT_TRUE(report.fell_back);
  ExpectReturnsSourceModel(report);
}

TEST_F(ChaosPipelineTest, InjectedDivergenceRollsBackInsteadOfFallingBack) {
  // With a healthy learning curve the best-epoch snapshot exists, so a
  // divergence verdict rolls back to it instead of discarding adaptation.
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("adaptation.diverge", 59, &delta);
  EXPECT_EQ(delta, 0u);
  EXPECT_TRUE(report.diverged);
  EXPECT_TRUE(report.rolled_back);
  EXPECT_FALSE(report.fell_back);
  ASSERT_NE(report.target_model, nullptr);
  for (Tensor* p : report.target_model->Params()) {
    EXPECT_TRUE(p->AllFinite());
  }
}

TEST_F(ChaosPipelineTest, PoisonedMcPredictionDegradesGracefully) {
  // One NaN prediction is dropped, the remaining n-1 samples adapt
  // normally — degradation, not fallback.
  obs::Counter* const dropped =
      obs::Registry::Get().GetCounter("tasfar.guard.dropped_predictions");
  const uint64_t dropped_before = dropped->value();
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("mc_dropout.poison", 61, &delta);
  EXPECT_EQ(delta, 0u);
  EXPECT_FALSE(report.fell_back);
  ASSERT_FALSE(report.skipped);
  EXPECT_EQ(report.num_confident + report.num_uncertain,
            tgt_x_->dim(0) - 1);
  EXPECT_EQ(dropped->value(), dropped_before + 1);
  // The poisoned sample (index 0) is in neither split.
  for (size_t i : report.confident_indices) EXPECT_NE(i, 0u);
  for (size_t i : report.uncertain_indices) EXPECT_NE(i, 0u);
}

// Per-backend chaos (ISSUE 10): the never-worse-than-source guarantee is
// backend-agnostic — a faulted Adapt under the ensemble or Laplace
// estimator must degrade to serving the source model bit-exactly, same
// as the MC-dropout cases above.
TEST_F(ChaosPipelineTest, EnsembleBackendStageFaultFallsBackToSource) {
  uint64_t delta = 0;
  TasfarReport report = AdaptBackendUnderFault(
      UncertaintyBackend::kDeepEnsemble, "tasfar.stage_fault", 73, &delta);
  EXPECT_EQ(delta, 1u);
  EXPECT_TRUE(report.fell_back);
  ExpectReturnsSourceModel(report);
}

TEST_F(ChaosPipelineTest, LaplaceBackendStageFaultFallsBackToSource) {
  uint64_t delta = 0;
  TasfarReport report =
      AdaptBackendUnderFault(UncertaintyBackend::kLastLayerLaplace,
                             "tasfar.stage_fault", 79, &delta);
  EXPECT_EQ(delta, 1u);
  EXPECT_TRUE(report.fell_back);
  ExpectReturnsSourceModel(report);
}

TEST_F(ChaosPipelineTest, PoisonedEnsemblePredictionDegradesGracefully) {
  // Mirror of PoisonedMcPredictionDegradesGracefully on the ensemble
  // backend: one NaN member-pass prediction is dropped by the guard, the
  // remaining samples adapt normally.
  obs::Counter* const dropped =
      obs::Registry::Get().GetCounter("tasfar.guard.dropped_predictions");
  const uint64_t dropped_before = dropped->value();
  uint64_t delta = 0;
  TasfarReport report = AdaptBackendUnderFault(
      UncertaintyBackend::kDeepEnsemble, "ensemble.poison", 83, &delta);
  EXPECT_EQ(delta, 0u);
  EXPECT_FALSE(report.fell_back);
  ASSERT_FALSE(report.skipped);
  EXPECT_EQ(report.num_confident + report.num_uncertain,
            tgt_x_->dim(0) - 1);
  EXPECT_EQ(dropped->value(), dropped_before + 1);
}

TEST_F(ChaosPipelineTest, PoisonedLaplacePredictionDegradesGracefully) {
  obs::Counter* const dropped =
      obs::Registry::Get().GetCounter("tasfar.guard.dropped_predictions");
  const uint64_t dropped_before = dropped->value();
  uint64_t delta = 0;
  TasfarReport report =
      AdaptBackendUnderFault(UncertaintyBackend::kLastLayerLaplace,
                             "laplace.poison", 89, &delta);
  EXPECT_EQ(delta, 0u);
  EXPECT_FALSE(report.fell_back);
  ASSERT_FALSE(report.skipped);
  EXPECT_EQ(report.num_confident + report.num_uncertain,
            tgt_x_->dim(0) - 1);
  EXPECT_EQ(dropped->value(), dropped_before + 1);
}

TEST_F(ChaosPipelineTest, RandomizedChaosRunExitsZero) {
  // The chaos-CI contract in one process: randomized faults across every
  // site at p=5% must still let adaptation terminate with a usable model
  // and a clean exit. threadsafe style re-executes the binary, so the
  // child owns a fresh thread pool.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        if (!failpoint::Configure("random:p=0.05:seed=1234").ok()) {
          std::exit(2);
        }
        Rng rng(67);
        TasfarReport report =
            tasfar_->Adapt(model_->get(), *calib_, *tgt_x_, &rng);
        std::exit(report.target_model != nullptr ? 0 : 1);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST_F(ChaosPipelineTest, WritesChaosMetricsSnapshot) {
  // Defined last so it runs last: exports the counters accumulated by the
  // tests above so the CI chaos job can archive fallback evidence.
  uint64_t delta = 0;
  TasfarReport report = AdaptUnderFault("tasfar.stage_fault", 71, &delta);
  EXPECT_EQ(delta, 1u);
  ExpectReturnsSourceModel(report);
  EXPECT_TRUE(obs::WriteMetricsSnapshot("chaos"));
}

}  // namespace
}  // namespace tasfar
