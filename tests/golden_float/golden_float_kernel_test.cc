// Golden float tier, kernel level: every float32 kernel must stay inside
// a documented error budget of the double-precision reference when fed
// narrowed double inputs. The budgets here are the normative constants —
// docs/MEMORY.md §"Float32 compute mode" carries the same table and the
// derivation; a change to either must update both. Each budget folds in
// the one-time input-narrowing error (|fl(x) - x| <= eps32 * |x|), which
// tests/tensor/simd_property_test.cc — operating on float inputs — does
// not have to account for.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "tensor/simd/dispatch.h"
#include "tensor/simd/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tasfar {
namespace {

using simd::DispatchableBackends;
using simd::F32Kernels;
using simd::KernelBackend;
using simd::KernelsFor;

// Unit roundoff of IEEE binary32. All budgets are multiples of this.
constexpr double kEps32 = 0x1.0p-24;

// --- Budget table (mirrors docs/MEMORY.md) ---------------------------------
// matmul:   |err| <= (2k + 8) * eps32 * sum_p |a_p * b_p|
//           (k fma roundings + 2 narrowings per product term + slack)
// add:      |err| <= 4 * eps32 * (|a| + |b|)
// mul:      |err| <= 4 * eps32 * |a * b|
// relu:     exact: relu_f32(fl(x)) == fl(relu_f64(x)) bit for bit
// tanh:     |err| <= 4 * eps32 * (1 + |x|)   (Lipschitz 1 + ~2 ulp libm)
// sigmoid:  |err| <= 4 * eps32 * (1 + |x|)
// ---------------------------------------------------------------------------
constexpr double kMatMulBudgetPerTerm = 2.0;  // * k, plus kMatMulBudgetSlack.
constexpr double kMatMulBudgetSlack = 8.0;
constexpr double kAddBudget = 4.0;
constexpr double kMulBudget = 4.0;
constexpr double kTranscendentalBudget = 4.0;

std::vector<float> Narrow(const Tensor& t) {
  std::vector<float> out(t.size());
  for (size_t i = 0; i < t.size(); ++i) out[i] = static_cast<float>(t[i]);
  return out;
}

TEST(GoldenFloatKernelTest, MatMulWithinBudgetOfDoubleReference) {
  Rng rng(401);
  const size_t m = 37, k = 53, n = 29;
  const Tensor a = Tensor::RandomNormal({m, k}, &rng);
  const Tensor b = Tensor::RandomNormal({k, n}, &rng);
  const std::vector<float> a32 = Narrow(a);
  const std::vector<float> b32 = Narrow(b);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> c(m * n, 0.0f);
    kernels->matmul(a32.data(), b32.data(), c.data(), m, k, n);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double exact = 0.0, abs_sum = 0.0;
        for (size_t p = 0; p < k; ++p) {
          const double prod = a[i * k + p] * b[p * n + j];
          exact += prod;
          abs_sum += std::fabs(prod);
        }
        const double budget =
            (kMatMulBudgetPerTerm * static_cast<double>(k) +
             kMatMulBudgetSlack) *
            kEps32 * abs_sum;
        EXPECT_NEAR(static_cast<double>(c[i * n + j]), exact, budget)
            << kernels->name << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GoldenFloatKernelTest, AddWithinBudgetOfDoubleReference) {
  Rng rng(402);
  const Tensor a = Tensor::RandomNormal({513}, &rng);
  const Tensor b = Tensor::RandomNormal({513}, &rng);
  const std::vector<float> a32 = Narrow(a);
  const std::vector<float> b32 = Narrow(b);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(a.size());
    kernels->add(a32.data(), b32.data(), out.data(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
      const double budget =
          kAddBudget * kEps32 * (std::fabs(a[i]) + std::fabs(b[i]));
      EXPECT_NEAR(static_cast<double>(out[i]), a[i] + b[i], budget)
          << kernels->name << " at " << i;
    }
  }
}

TEST(GoldenFloatKernelTest, MulWithinBudgetOfDoubleReference) {
  Rng rng(403);
  const Tensor a = Tensor::RandomNormal({513}, &rng);
  const Tensor b = Tensor::RandomNormal({513}, &rng);
  const std::vector<float> a32 = Narrow(a);
  const std::vector<float> b32 = Narrow(b);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(a.size());
    kernels->mul(a32.data(), b32.data(), out.data(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
      const double budget = kMulBudget * kEps32 * std::fabs(a[i] * b[i]);
      EXPECT_NEAR(static_cast<double>(out[i]), a[i] * b[i], budget)
          << kernels->name << " at " << i;
    }
  }
}

// relu carries a zero budget: narrowing preserves sign (ties round away
// from crossing zero only for subnormals, which still keep their sign
// bit), so relu then narrow equals narrow then relu, bit for bit.
TEST(GoldenFloatKernelTest, ReluExactlyCommutesWithNarrowing) {
  Rng rng(404);
  Tensor x = Tensor::RandomNormal({515}, &rng);
  x[0] = 0.0;
  x[1] = -0.0;
  x[2] = 1e-320;   // Subnormal in double, flushes to +0 in float.
  x[3] = -1e-320;  // Flushes to -0 in float: relu must yield +0.
  const std::vector<float> x32 = Narrow(x);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(x.size());
    kernels->relu(x32.data(), out.data(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      const float expected = static_cast<float>(x[i] > 0.0 ? x[i] : 0.0);
      EXPECT_EQ(out[i], expected) << kernels->name << " at " << i;
      if (out[i] == 0.0f) {
        EXPECT_FALSE(std::signbit(out[i]))
            << kernels->name << " at " << i << ": relu output is -0.0f";
      }
    }
  }
}

TEST(GoldenFloatKernelTest, TanhWithinBudgetOfDoubleReference) {
  Rng rng(405);
  const Tensor x = Tensor::RandomNormal({517}, &rng);
  const std::vector<float> x32 = Narrow(x);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(x.size());
    kernels->tanh(x32.data(), out.data(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      const double budget =
          kTranscendentalBudget * kEps32 * (1.0 + std::fabs(x[i]));
      EXPECT_NEAR(static_cast<double>(out[i]), std::tanh(x[i]), budget)
          << kernels->name << " at " << i;
    }
  }
}

TEST(GoldenFloatKernelTest, SigmoidWithinBudgetOfDoubleReference) {
  Rng rng(406);
  const Tensor x = Tensor::RandomNormal({519}, &rng);
  const std::vector<float> x32 = Narrow(x);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(x.size());
    kernels->sigmoid(x32.data(), out.data(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      const double budget =
          kTranscendentalBudget * kEps32 * (1.0 + std::fabs(x[i]));
      const double exact = 1.0 / (1.0 + std::exp(-x[i]));
      EXPECT_NEAR(static_cast<double>(out[i]), exact, budget)
          << kernels->name << " at " << i;
    }
  }
}

// Saturation: sigmoid must not overflow or produce NaN for large |x|
// (the single-exp form is safe because exp(-x) overflows to +inf and
// 1/(1+inf) == +0 — documented in activations.cc).
TEST(GoldenFloatKernelTest, SigmoidSaturatesCleanlyAtExtremes) {
  const float x32[4] = {-120.0f, -30.0f, 30.0f, 120.0f};
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    float out[4];
    kernels->sigmoid(x32, out, 4);
    EXPECT_EQ(out[0], 0.0f) << kernels->name;
    EXPECT_NEAR(out[1], 0.0f, 1e-12f) << kernels->name;
    EXPECT_NEAR(out[2], 1.0f, 1e-12f) << kernels->name;
    EXPECT_EQ(out[3], 1.0f) << kernels->name;
    for (float v : out) EXPECT_FALSE(std::isnan(v)) << kernels->name;
  }
}

// Tensor-level entry point: MatMulF32Into must stay inside the kernel
// budget at every thread count — the row-sharded parallel path reorders
// nothing (each row is one shard), so thread count must not consume any
// extra budget.
TEST(GoldenFloatKernelTest, MatMulF32IntoWithinBudgetAtEveryThreadCount) {
  Rng rng(407);
  const size_t m = 96, k = 64, n = 48;  // Above the parallel cutoff.
  const Tensor a = Tensor::RandomNormal({m, k}, &rng);
  const Tensor b = Tensor::RandomNormal({k, n}, &rng);
  Tensor reference({m, n});
  MatMulInto(a, b, &reference);
  Tensor baseline({m, n});
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    Tensor out({m, n});
    simd::MatMulF32Into(a, b, &out);
    if (threads == 1) {
      baseline = out;
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
          double abs_sum = 0.0;
          for (size_t p = 0; p < k; ++p) {
            abs_sum += std::fabs(a[i * k + p] * b[p * n + j]);
          }
          const double budget =
              (kMatMulBudgetPerTerm * static_cast<double>(k) +
               kMatMulBudgetSlack) *
              kEps32 * abs_sum;
          EXPECT_NEAR(out[i * n + j], reference[i * n + j], budget)
              << "(" << i << "," << j << ")";
        }
      }
    } else {
      for (size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], baseline[i])
            << "thread count " << threads << " changed element " << i;
      }
    }
  }
  SetNumThreads(0);
}

}  // namespace
}  // namespace tasfar
