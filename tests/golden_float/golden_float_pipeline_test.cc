// Golden float tier, pipeline level: running the TASFAR pipeline with the
// float32 compute mode enabled must (a) stay deterministic — byte-identical
// across repeat runs and across TASFAR_NUM_THREADS=1/2/8 — and (b) land
// within documented margins of the golden double pipeline: the
// confident/uncertain partition, tau, and the final adapted-model error may
// drift only by the amounts pinned below (measured on the fixed-seed
// housing_sim fixture; docs/MEMORY.md §"Float32 compute mode" carries the
// same table). Training always runs in double — f32 affects only the
// MC-dropout forward passes that drive calibration and the confidence
// split — so the two runs share RNG streams draw for draw.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/tasfar.h"
#include "data/housing_sim.h"
#include "eval/metrics.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "tensor/simd/dispatch.h"
#include "util/thread_pool.h"

namespace tasfar {
namespace {

using simd::ComputeMode;
using simd::ScopedKernelConfig;

// --- Measured f32-vs-double margins (normative; see docs/MEMORY.md) --------
// Fixture: housing_sim seed 77, 240/120 samples, model seed 101, adapt seed
// 202, mc_samples 8, 10 segments, 8 adaptation epochs. Measured on this
// fixture: tau rel diff 2.0e-7, Jaccard 1.0 (74 = 74 uncertain), MAE abs
// diff 1.8e-7. Margins leave ~500x headroom so a different libm or FMA
// contraction choice cannot flake the tier, while still catching any real
// numerical regression (a wrong kernel moves these by orders of magnitude).
constexpr double kTauRelMargin = 1e-4;         ///< |tau_f32 - tau| / tau.
constexpr double kPartitionJaccardMin = 0.95;  ///< Uncertain-set overlap.
constexpr double kAdaptedMaeMargin = 1e-3;     ///< |MAE_f32 - MAE| on target.
// ---------------------------------------------------------------------------

struct PipelineRun {
  std::string adapted_weights;  ///< SerializeParams — exact byte identity.
  double tau = 0.0;
  std::vector<size_t> uncertain_indices;
  std::vector<size_t> confident_indices;
  double adapted_mae = 0.0;  ///< Adapted model vs target ground truth.
  bool skipped = false;
  bool fell_back = false;
};

/// Trains the source model in double (identical in both modes: Fit never
/// touches the f32 path), then calibrates and adapts under the currently
/// configured compute mode.
PipelineRun RunPipeline() {
  HousingSimConfig sim_cfg;
  sim_cfg.source_samples = 240;
  sim_cfg.target_samples = 120;
  HousingSimulator sim(sim_cfg, /*seed=*/77);
  Dataset source = sim.GenerateSource();
  Dataset target = sim.GenerateTarget();
  Normalizer norm;
  norm.Fit(source.inputs);
  const Tensor src_x = norm.Apply(source.inputs);
  const Tensor tgt_x = norm.Apply(target.inputs);

  Rng rng(101);
  auto model = BuildTabularModel(kNumHousingFeatures, &rng);
  Adam opt(1e-3);
  Trainer trainer(model.get(), &opt,
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  trainer.Fit(src_x, source.targets, tc, &rng);

  TasfarOptions options;
  options.mc_samples = 8;
  options.num_segments = 10;
  options.adaptation.train.epochs = 8;
  Tasfar tasfar(options);
  const SourceCalibration calib =
      tasfar.Calibrate(model.get(), src_x, source.targets);
  Rng adapt_rng(202);
  TasfarReport report = tasfar.Adapt(model.get(), calib, tgt_x, &adapt_rng);

  PipelineRun run;
  run.adapted_weights = SerializeParams(report.target_model.get());
  run.tau = report.tau;
  run.uncertain_indices = report.uncertain_indices;
  run.confident_indices = report.confident_indices;
  const Tensor pred = BatchedForward(report.target_model.get(), tgt_x);
  run.adapted_mae = metrics::Mae(pred, target.targets);
  run.skipped = report.skipped;
  run.fell_back = report.fell_back;
  return run;
}

PipelineRun RunPipelineF32() {
  ScopedKernelConfig guard;
  simd::SetComputeMode(ComputeMode::kF32);
  return RunPipeline();
}

double Jaccard(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const std::set<size_t> sa(a.begin(), a.end());
  const std::set<size_t> sb(b.begin(), b.end());
  size_t inter = 0;
  for (size_t x : sa) inter += sb.count(x);
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

class GoldenFloatPipelineTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(0); }
};

TEST_F(GoldenFloatPipelineTest, F32RunIsByteIdenticalAcrossRepeats) {
  const PipelineRun first = RunPipelineF32();
  ASSERT_FALSE(first.skipped);
  ASSERT_FALSE(first.fell_back);
  const PipelineRun second = RunPipelineF32();
  EXPECT_EQ(first.adapted_weights, second.adapted_weights);
  EXPECT_EQ(first.tau, second.tau);
  EXPECT_EQ(first.uncertain_indices, second.uncertain_indices);
  EXPECT_EQ(first.confident_indices, second.confident_indices);
  EXPECT_EQ(first.adapted_mae, second.adapted_mae);
}

TEST_F(GoldenFloatPipelineTest, F32RunIsByteIdenticalAcrossThreadCounts) {
  SetNumThreads(1);
  const PipelineRun t1 = RunPipelineF32();
  ASSERT_FALSE(t1.skipped);
  SetNumThreads(2);
  const PipelineRun t2 = RunPipelineF32();
  SetNumThreads(8);
  const PipelineRun t8 = RunPipelineF32();
  EXPECT_EQ(t1.adapted_weights, t2.adapted_weights) << "1 vs 2 threads";
  EXPECT_EQ(t1.adapted_weights, t8.adapted_weights) << "1 vs 8 threads";
  EXPECT_EQ(t1.tau, t2.tau);
  EXPECT_EQ(t1.tau, t8.tau);
  EXPECT_EQ(t1.uncertain_indices, t2.uncertain_indices);
  EXPECT_EQ(t1.uncertain_indices, t8.uncertain_indices);
}

TEST_F(GoldenFloatPipelineTest, F32StaysWithinDocumentedMarginsOfDouble) {
  const PipelineRun f64 = RunPipeline();  // Mode defaults to double.
  ASSERT_FALSE(f64.skipped);
  ASSERT_FALSE(f64.fell_back);
  const PipelineRun f32 = RunPipelineF32();
  ASSERT_FALSE(f32.skipped);
  ASSERT_FALSE(f32.fell_back);

  // tau: computed from source-side MC-dropout uncertainties, whose only
  // perturbation is float rounding in the forward passes.
  EXPECT_NEAR(f32.tau, f64.tau, kTauRelMargin * std::abs(f64.tau));

  // Partition: near-threshold samples may flip sides; the bulk must not.
  const double jaccard = Jaccard(f32.uncertain_indices, f64.uncertain_indices);
  EXPECT_GE(jaccard, kPartitionJaccardMin)
      << "uncertain sets: f32 " << f32.uncertain_indices.size() << ", double "
      << f64.uncertain_indices.size();
  EXPECT_EQ(f32.uncertain_indices.size() + f32.confident_indices.size(),
            f64.uncertain_indices.size() + f64.confident_indices.size());

  // Final adapted-model quality must be indistinguishable at fixture scale.
  EXPECT_NEAR(f32.adapted_mae, f64.adapted_mae, kAdaptedMaeMargin);
}

}  // namespace
}  // namespace tasfar
