// Last-layer Laplace backend (docs/UNCERTAINTY.md): closed-form
// Gauss–Newton predictive variance with no stochastic passes — fully
// deterministic, OOD-sensitive, and pluggable wherever an
// UncertaintyEstimator is.

#include "uncertainty/laplace.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tasfar.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> HeadedModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(2, 16, rng);
  m->Emplace<Relu>();
  m->Emplace<Dense>(16, 1, rng);
  return m;
}

void ExpectIdentical(const std::vector<McPrediction>& a,
                     const std::vector<McPrediction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].mean.size(), b[i].mean.size());
    for (size_t j = 0; j < a[i].mean.size(); ++j) {
      EXPECT_EQ(a[i].mean[j], b[i].mean[j]);
      EXPECT_EQ(a[i].std[j], b[i].std[j]);
    }
  }
}

TEST(LastLayerLaplaceTest, PredictsPerSampleWithPositiveVariance) {
  Rng rng(1);
  auto model = HeadedModel(&rng);
  LastLayerLaplace laplace(model.get());
  Tensor x = Tensor::RandomNormal({12, 2}, &rng);
  auto preds = laplace.Predict(x);
  ASSERT_EQ(preds.size(), 12u);
  for (const auto& p : preds) {
    ASSERT_EQ(p.mean.size(), 1u);
    ASSERT_EQ(p.std.size(), 1u);
    EXPECT_TRUE(std::isfinite(p.mean[0]));
    // φᵀ(λI + ΦᵀΦ)⁻¹φ > 0 whenever φ ≠ 0, and the bias feature makes
    // φ ≠ 0 for every row.
    EXPECT_GT(p.std[0], 0.0);
  }
}

TEST(LastLayerLaplaceTest, MeanIsTheModelsOwnPrediction) {
  Rng rng(2);
  auto model = HeadedModel(&rng);
  LastLayerLaplace laplace(model.get());
  Tensor x = Tensor::RandomNormal({8, 2}, &rng);
  auto preds = laplace.Predict(x);
  Tensor det = model->Forward(x, /*training=*/false);
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_NEAR(preds[i].mean[0], det.At(i, 0), 1e-12);
  }
  Tensor mean = laplace.PredictMean(x);
  EXPECT_NEAR(mean.MaxAbsDiff(det), 0.0, 1e-12);
}

TEST(LastLayerLaplaceTest, EveryCallIsByteIdenticalAtAnyThreadCount) {
  // Stronger than the per-call-index contract: with no stochastic state at
  // all, *every* call returns the same bytes, at 1, 2, and 8 threads.
  auto run = [](size_t threads) {
    SetNumThreads(threads);
    Rng rng(3);
    auto model = HeadedModel(&rng);
    LastLayerLaplace laplace(model.get());
    Tensor x = Tensor::RandomNormal({37, 2}, &rng);
    auto first = laplace.Predict(x);
    auto second = laplace.Predict(x);
    SetNumThreads(0);
    return std::make_pair(first, second);
  };
  auto [a1, a2] = run(1);
  auto [b1, b2] = run(2);
  auto [c1, c2] = run(8);
  ExpectIdentical(a1, a2);  // No per-call streams.
  ExpectIdentical(a1, b1);
  ExpectIdentical(a1, c1);
  ExpectIdentical(a2, b2);
  ExpectIdentical(a2, c2);
}

TEST(LastLayerLaplaceTest, OutlierRowsGetLargerVariance) {
  // The property the confidence split leans on: rows whose last-layer
  // features sit far from the batch's bulk — where the source model is
  // extrapolating — must report larger predictive std.
  Rng rng(4);
  auto model = HeadedModel(&rng);
  LastLayerLaplace laplace(model.get());
  Tensor x({41, 2});
  for (size_t i = 0; i < 40; ++i) {
    x.At(i, 0) = rng.Normal(0.0, 0.3);
    x.At(i, 1) = rng.Normal(0.0, 0.3);
  }
  x.At(40, 0) = 9.0;  // Far outside the cluster.
  x.At(40, 1) = -9.0;
  auto preds = laplace.Predict(x);
  double bulk = 0.0;
  for (size_t i = 0; i < 40; ++i) bulk += preds[i].std[0];
  bulk /= 40.0;
  EXPECT_GT(preds[40].std[0], bulk);
}

TEST(LastLayerLaplaceTest, StrongerPriorShrinksVariance) {
  // Var = φᵀ(λI + ΦᵀΦ)⁻¹φ is monotonically decreasing in λ.
  Rng rng(5);
  auto model = HeadedModel(&rng);
  Tensor x = Tensor::RandomNormal({20, 2}, &rng);
  LastLayerLaplace weak(model.get(), /*prior_precision=*/0.1);
  LastLayerLaplace strong(model.get(), /*prior_precision=*/100.0);
  auto weak_preds = weak.Predict(x);
  auto strong_preds = strong.Predict(x);
  for (size_t i = 0; i < weak_preds.size(); ++i) {
    EXPECT_LT(strong_preds[i].std[0], weak_preds[i].std[0]);
  }
}

TEST(LastLayerLaplaceTest, MultiOutputSharesTheStdAcrossDims) {
  // The MSE Gauss–Newton posterior factorizes per output dimension with a
  // shared covariance, so every dim reports the same std.
  Rng rng(6);
  Sequential model;
  model.Emplace<Dense>(3, 8, &rng);
  model.Emplace<Relu>();
  model.Emplace<Dense>(8, 2, &rng);
  LastLayerLaplace laplace(&model);
  Tensor x = Tensor::RandomNormal({5, 3}, &rng);
  for (const auto& p : laplace.Predict(x)) {
    ASSERT_EQ(p.std.size(), 2u);
    EXPECT_EQ(p.std[0], p.std[1]);
  }
}

TEST(LastLayerLaplaceTest, EmptyInputReturnsEmpty) {
  Rng rng(7);
  auto model = HeadedModel(&rng);
  LastLayerLaplace laplace(model.get());
  Tensor empty({0, 2});
  EXPECT_TRUE(laplace.Predict(empty).empty());
  Tensor mean = laplace.PredictMean(empty);
  EXPECT_EQ(mean.rank(), 2u);
  EXPECT_EQ(mean.dim(0), 0u);
}

TEST(LastLayerLaplaceTest, CloneMatchesOriginalOverTheSameWeights) {
  Rng rng(8);
  auto model = HeadedModel(&rng);
  LastLayerLaplace laplace(model.get(), /*prior_precision=*/2.5);
  auto replica_model = model->CloneSequential();
  auto clone = laplace.Clone(replica_model.get());
  EXPECT_STREQ(clone->name(), "laplace");
  Tensor x = Tensor::RandomNormal({9, 2}, &rng);
  ExpectIdentical(laplace.Predict(x), clone->Predict(x));
}

TEST(LastLayerLaplaceTest, PluggableIntoTasfarPipeline) {
  // End-to-end orthogonality: calibrate and adapt on Laplace predictions
  // instead of MC dropout's, through the same Tasfar entry points.
  Rng rng(9);
  Tensor src_x({300, 1});
  Tensor src_y({300, 1});
  for (size_t i = 0; i < 300; ++i) {
    src_x.At(i, 0) = rng.Uniform(-2.0, 2.0);
    src_y.At(i, 0) = src_x.At(i, 0) + rng.Normal(0.0, 0.05);
  }
  Sequential model;
  model.Emplace<Dense>(1, 16, &rng);
  model.Emplace<Relu>();
  model.Emplace<Dense>(16, 1, &rng);
  Adam optimizer(0.01);
  Trainer trainer(&model, &optimizer,
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 40;
  Rng train_rng(10);
  trainer.Fit(src_x, src_y, tc, &train_rng);

  LastLayerLaplace laplace(&model);
  TasfarOptions options;
  options.grid_cell_size = 0.05;
  options.adaptation.train.epochs = 30;
  Tasfar tasfar(options);
  SourceCalibration calib =
      tasfar.CalibrateFromPredictions(laplace.Predict(src_x), src_y);
  EXPECT_GT(calib.tau, 0.0);

  Tensor tgt_x({150, 1});
  for (size_t i = 0; i < 150; ++i) {
    tgt_x.At(i, 0) =
        (i % 3 == 0) ? rng.Uniform(2.5, 3.5) : rng.Uniform(1.4, 1.9);
  }
  Rng adapt_rng(11);
  TasfarReport report = tasfar.AdaptWithPredictions(
      &model, calib, tgt_x, laplace.Predict(tgt_x), &adapt_rng);
  EXPECT_EQ(report.predictions.size(), 150u);
  EXPECT_EQ(report.num_confident + report.num_uncertain, 150u);
  ASSERT_NE(report.target_model, nullptr);
}

TEST(LastLayerLaplaceDeathTest, NonDenseHeadAborts) {
  Rng rng(12);
  Sequential model;
  model.Emplace<Dense>(2, 4, &rng);
  model.Emplace<Relu>();  // Head is an activation, not a Dense.
  EXPECT_DEATH(LastLayerLaplace{&model}, "Dense");
}

TEST(LastLayerLaplaceDeathTest, NonPositivePriorAborts) {
  Rng rng(13);
  auto model = HeadedModel(&rng);
  EXPECT_DEATH(LastLayerLaplace(model.get(), 0.0), "precision");
}

}  // namespace
}  // namespace tasfar
