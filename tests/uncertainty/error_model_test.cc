#include "uncertainty/error_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tasfar {
namespace {

const ErrorModelKind kAllKinds[] = {ErrorModelKind::kGaussian,
                                    ErrorModelKind::kLaplace,
                                    ErrorModelKind::kUniform};

class ErrorModelParamTest : public ::testing::TestWithParam<ErrorModelKind> {
};

TEST_P(ErrorModelParamTest, CdfMonotoneFromZeroToOne) {
  const ErrorModelKind kind = GetParam();
  double prev = -1.0;
  for (double x = -10.0; x <= 10.0; x += 0.25) {
    const double c = ErrorModelCdf(kind, x, 0.0, 1.5);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(ErrorModelCdf(kind, -100.0, 0.0, 1.5), 0.0, 1e-9);
  EXPECT_NEAR(ErrorModelCdf(kind, 100.0, 0.0, 1.5), 1.0, 1e-9);
}

TEST_P(ErrorModelParamTest, CdfAtMeanIsHalf) {
  EXPECT_NEAR(ErrorModelCdf(GetParam(), 2.0, 2.0, 0.7), 0.5, 1e-12);
}

TEST_P(ErrorModelParamTest, VarianceMatchesSigma) {
  // Numerically integrate x² pdf to confirm the families are
  // variance-matched to sigma².
  const ErrorModelKind kind = GetParam();
  const double sigma = 1.3;
  double var = 0.0;
  const double dx = 0.001;
  for (double x = -15.0; x <= 15.0; x += dx) {
    var += x * x * ErrorModelPdf(kind, x, 0.0, sigma) * dx;
  }
  EXPECT_NEAR(var, sigma * sigma, 0.01);
}

TEST_P(ErrorModelParamTest, PdfIntegratesToOne) {
  const ErrorModelKind kind = GetParam();
  double total = 0.0;
  const double dx = 0.001;
  for (double x = -15.0; x <= 15.0; x += dx) {
    total += ErrorModelPdf(kind, x, 1.0, 1.1) * dx;
  }
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST_P(ErrorModelParamTest, CellMassMatchesCdfDifference) {
  const ErrorModelKind kind = GetParam();
  const double mass = ErrorModelCellMass(kind, -0.5, 0.7, 0.1, 0.9);
  EXPECT_NEAR(mass,
              ErrorModelCdf(kind, 0.7, 0.1, 0.9) -
                  ErrorModelCdf(kind, -0.5, 0.1, 0.9),
              1e-15);
  EXPECT_GE(mass, 0.0);
}

TEST_P(ErrorModelParamTest, FullLineMassIsOne) {
  EXPECT_NEAR(ErrorModelCellMass(GetParam(), -100.0, 100.0, 0.0, 1.0), 1.0,
              1e-9);
}

TEST_P(ErrorModelParamTest, SymmetricMassAroundMean) {
  const ErrorModelKind kind = GetParam();
  const double left = ErrorModelCellMass(kind, -1.0, 0.0, 0.0, 1.0);
  const double right = ErrorModelCellMass(kind, 0.0, 1.0, 0.0, 1.0);
  EXPECT_NEAR(left, right, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ErrorModelParamTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& param_info) {
                           return ErrorModelKindToString(param_info.param);
                         });

TEST(ErrorModelTest, GaussianCdfKnownValue) {
  // Φ(1) ≈ 0.8413.
  EXPECT_NEAR(ErrorModelCdf(ErrorModelKind::kGaussian, 1.0, 0.0, 1.0),
              0.841345, 1e-5);
}

TEST(ErrorModelTest, UniformCdfHasCompactSupport) {
  const double half = std::sqrt(3.0);
  EXPECT_DOUBLE_EQ(
      ErrorModelCdf(ErrorModelKind::kUniform, -half - 0.01, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(
      ErrorModelCdf(ErrorModelKind::kUniform, half + 0.01, 0.0, 1.0), 1.0);
}

TEST(ErrorModelTest, LaplaceHeavierTailsThanGaussian) {
  const double g = 1.0 - ErrorModelCdf(ErrorModelKind::kGaussian, 3.0, 0.0,
                                       1.0);
  const double l = 1.0 - ErrorModelCdf(ErrorModelKind::kLaplace, 3.0, 0.0,
                                       1.0);
  EXPECT_GT(l, g);
}

TEST(ErrorModelTest, KindNames) {
  EXPECT_STREQ(ErrorModelKindToString(ErrorModelKind::kGaussian), "Gaussian");
  EXPECT_STREQ(ErrorModelKindToString(ErrorModelKind::kLaplace), "Laplace");
  EXPECT_STREQ(ErrorModelKindToString(ErrorModelKind::kUniform), "Uniform");
}

}  // namespace
}  // namespace tasfar
