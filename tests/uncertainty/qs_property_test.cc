// Property-style sweeps over the Q_s calibration: the fit must recover the
// generative uncertainty→error-spread relation for every slope/intercept
// combination and error-noise family.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "uncertainty/qs_calibration.h"
#include "util/rng.h"

namespace tasfar {
namespace {

using Param = std::tuple<double /*a0*/, double /*a1*/, int /*noise kind*/>;

class QsPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  double a0() const { return std::get<0>(GetParam()); }
  double a1() const { return std::get<1>(GetParam()); }
  int noise_kind() const { return std::get<2>(GetParam()); }

  /// error ~ family(0, a0 + a1 u): Gaussian (0) or Laplace (1), both
  /// variance-matched.
  std::vector<UncertaintyErrorPair> Generate(size_t n, uint64_t seed) const {
    Rng rng(seed);
    std::vector<UncertaintyErrorPair> pairs;
    pairs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double u = rng.Uniform(0.1, 2.0);
      const double sigma = a0() + a1() * u;
      const double e = noise_kind() == 0
                           ? rng.Normal(0.0, sigma)
                           : rng.Laplace(0.0, sigma / std::numbers::sqrt2);
      pairs.push_back({u, e});
    }
    return pairs;
  }
};

TEST_P(QsPropertyTest, RecoversInterceptAndSlope) {
  QsModel model = QsCalibrator::Fit(Generate(30000, 11), 40);
  EXPECT_NEAR(model.line.intercept, a0(), 0.06 + 0.05 * a0());
  EXPECT_NEAR(model.line.slope, a1(), 0.06 + 0.05 * a1());
}

TEST_P(QsPropertyTest, SegmentsAreMonotoneInUncertainty) {
  auto segments = QsCalibrator::Segment(Generate(5000, 13), 20);
  for (size_t s = 0; s + 1 < segments.size(); ++s) {
    EXPECT_LE(segments[s].mean_uncertainty,
              segments[s + 1].mean_uncertainty);
  }
}

TEST_P(QsPropertyTest, SigmaPositiveAcrossRange) {
  QsModel model = QsCalibrator::Fit(Generate(5000, 17), 20);
  for (double u = 0.0; u <= 3.0; u += 0.1) {
    EXPECT_GT(model.Sigma(u), 0.0);
  }
}

TEST_P(QsPropertyTest, FitIsSampleOrderInvariant) {
  auto pairs = Generate(2000, 19);
  QsModel forward = QsCalibrator::Fit(pairs, 10);
  std::vector<UncertaintyErrorPair> reversed(pairs.rbegin(), pairs.rend());
  QsModel backward = QsCalibrator::Fit(reversed, 10);
  EXPECT_DOUBLE_EQ(forward.line.intercept, backward.line.intercept);
  EXPECT_DOUBLE_EQ(forward.line.slope, backward.line.slope);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QsPropertyTest,
    ::testing::Combine(::testing::Values(0.05, 0.3),
                       ::testing::Values(0.2, 1.0),
                       ::testing::Values(0, 1)),
    [](const auto& param_info) {
      std::string name = "a0_";
      name += std::to_string(static_cast<int>(std::get<0>(param_info.param) * 100));
      name += "_a1_";
      name += std::to_string(static_cast<int>(std::get<1>(param_info.param) * 100));
      name += (std::get<2>(param_info.param) == 0 ? "_gauss" : "_laplace");
      return name;
    });

}  // namespace
}  // namespace tasfar
