#include "uncertainty/qs_calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace tasfar {
namespace {

std::vector<UncertaintyErrorPair> LinearNoisyPairs(size_t n, double a0,
                                                   double a1, uint64_t seed) {
  // error ~ N(0, a0 + a1 * u): the exact generative model Q_s assumes.
  Rng rng(seed);
  std::vector<UncertaintyErrorPair> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.Uniform(0.1, 2.0);
    pairs.push_back({u, rng.Normal(0.0, a0 + a1 * u)});
  }
  return pairs;
}

TEST(QsCalibratorTest, SegmentCountsAndOrdering) {
  auto pairs = LinearNoisyPairs(100, 0.1, 0.5, 1);
  auto segments = QsCalibrator::Segment(pairs, 10);
  ASSERT_EQ(segments.size(), 10u);
  size_t total = 0;
  for (size_t s = 0; s + 1 < segments.size(); ++s) {
    EXPECT_LE(segments[s].mean_uncertainty, segments[s + 1].mean_uncertainty);
    total += segments[s].count;
  }
  total += segments.back().count;
  EXPECT_EQ(total, 100u);
}

TEST(QsCalibratorTest, SegmentErrorStdIsRms) {
  std::vector<UncertaintyErrorPair> pairs{{1.0, 3.0}, {1.0, -4.0}};
  auto segments = QsCalibrator::Segment(pairs, 1);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].error_std, std::sqrt((9.0 + 16.0) / 2.0));
  EXPECT_DOUBLE_EQ(segments[0].mean_uncertainty, 1.0);
}

TEST(QsCalibratorTest, RecoversLinearRelation) {
  auto pairs = LinearNoisyPairs(20000, 0.2, 0.8, 2);
  QsModel model = QsCalibrator::Fit(pairs, 40);
  EXPECT_NEAR(model.line.intercept, 0.2, 0.05);
  EXPECT_NEAR(model.line.slope, 0.8, 0.05);
}

TEST(QsCalibratorTest, SigmaIncreasesWithUncertainty) {
  auto pairs = LinearNoisyPairs(5000, 0.1, 1.0, 3);
  QsModel model = QsCalibrator::Fit(pairs, 20);
  EXPECT_GT(model.Sigma(2.0), model.Sigma(0.2));
}

TEST(QsCalibratorTest, SingleSegmentGivesFlatModel) {
  auto pairs = LinearNoisyPairs(100, 0.5, 0.0, 4);
  QsModel model = QsCalibrator::Fit(pairs, 1);
  EXPECT_DOUBLE_EQ(model.line.slope, 0.0);
  EXPECT_NEAR(model.line.intercept, 0.5, 0.15);
}

TEST(QsModelTest, SigmaClampedBelow) {
  QsModel model;
  model.line.intercept = -1.0;  // A pathological fit.
  model.line.slope = 0.0;
  model.sigma_min = 0.01;
  EXPECT_DOUBLE_EQ(model.Sigma(5.0), 0.01);
}

TEST(QsModelTest, SigmaPassesThroughWhenAboveMin) {
  QsModel model;
  model.line.intercept = 0.1;
  model.line.slope = 2.0;
  EXPECT_DOUBLE_EQ(model.Sigma(1.0), 2.1);
}

TEST(QsCalibratorTest, ConstantUncertaintyDegeneratesGracefully) {
  std::vector<UncertaintyErrorPair> pairs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) pairs.push_back({1.0, rng.Normal(0.0, 0.7)});
  QsModel model = QsCalibrator::Fit(pairs, 10);
  // All segments have identical mean uncertainty -> flat fit near 0.7.
  EXPECT_NEAR(model.Sigma(1.0), 0.7, 0.15);
}

TEST(QsCalibratorDeathTest, MoreSegmentsThanPairsAborts) {
  std::vector<UncertaintyErrorPair> pairs{{1.0, 0.0}};
  EXPECT_DEATH(QsCalibrator::Segment(pairs, 2), "at least one pair");
}

}  // namespace
}  // namespace tasfar
