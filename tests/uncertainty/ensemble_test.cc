#include "uncertainty/ensemble.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/tasfar.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "tensor/buffer.h"
#include "util/thread_pool.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> SmallModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(1, 16, rng);
  m->Emplace<Relu>();
  m->Emplace<Dense>(16, 1, rng);
  return m;
}

DeepEnsemble TrainedEnsemble(size_t members, uint64_t seed) {
  Rng rng(seed);
  Tensor x({200, 1});
  Tensor y({200, 1});
  for (size_t i = 0; i < 200; ++i) {
    x.At(i, 0) = rng.Uniform(-2.0, 2.0);
    y.At(i, 0) = x.At(i, 0) + rng.Normal(0.0, 0.05);
  }
  TrainConfig tc;
  tc.epochs = 40;
  return DeepEnsemble::Train(SmallModel, x, y, members, tc, 0.01, &rng);
}

TEST(DeepEnsembleTest, PredictsPerSampleWithDisagreement) {
  DeepEnsemble ensemble = TrainedEnsemble(3, 1);
  EXPECT_EQ(ensemble.num_members(), 3u);
  Rng rng(2);
  Tensor x = Tensor::RandomNormal({10, 1}, &rng);
  auto preds = ensemble.Predict(x);
  ASSERT_EQ(preds.size(), 10u);
  for (const auto& p : preds) {
    EXPECT_EQ(p.mean.size(), 1u);
    EXPECT_GE(p.std[0], 0.0);
  }
}

TEST(DeepEnsembleTest, InDistributionPredictionsAccurate) {
  DeepEnsemble ensemble = TrainedEnsemble(3, 3);
  Tensor x({3, 1}, {-1.0, 0.0, 1.0});
  Tensor mean = ensemble.PredictMean(x);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(mean.At(i, 0), x.At(i, 0), 0.15);
  }
}

TEST(DeepEnsembleTest, DisagreementGrowsOutOfDistribution) {
  DeepEnsemble ensemble = TrainedEnsemble(4, 5);
  Tensor in_dist({20, 1});
  Tensor out_dist({20, 1});
  Rng rng(7);
  for (size_t i = 0; i < 20; ++i) {
    in_dist.At(i, 0) = rng.Uniform(-1.5, 1.5);
    out_dist.At(i, 0) = rng.Uniform(5.0, 8.0);
  }
  double u_in = 0.0, u_out = 0.0;
  for (const auto& p : ensemble.Predict(in_dist)) {
    u_in += p.ScalarUncertainty();
  }
  for (const auto& p : ensemble.Predict(out_dist)) {
    u_out += p.ScalarUncertainty();
  }
  EXPECT_GT(u_out, u_in);
}

TEST(DeepEnsembleTest, MeanMatchesMemberAverage) {
  DeepEnsemble ensemble = TrainedEnsemble(2, 9);
  Rng rng(11);
  Tensor x = Tensor::RandomNormal({5, 1}, &rng);
  Tensor mean = ensemble.PredictMean(x);
  Tensor manual = (ensemble.member(0).Forward(x, false) +
                   ensemble.member(1).Forward(x, false)) /
                  2.0;
  EXPECT_NEAR(mean.MaxAbsDiff(manual), 0.0, 1e-12);
}

TEST(DeepEnsembleTest, PluggableIntoTasfarPipeline) {
  // The paper's orthogonality claim, end to end: calibrate and adapt with
  // ensemble predictions instead of MC dropout.
  Rng rng(13);
  Tensor src_x({300, 1});
  Tensor src_y({300, 1});
  for (size_t i = 0; i < 300; ++i) {
    src_x.At(i, 0) = rng.Uniform(-2.0, 2.0);
    src_y.At(i, 0) = src_x.At(i, 0) + rng.Normal(0.0, 0.05);
  }
  TrainConfig tc;
  tc.epochs = 40;
  DeepEnsemble ensemble =
      DeepEnsemble::Train(SmallModel, src_x, src_y, 3, tc, 0.01, &rng);

  TasfarOptions options;
  options.grid_cell_size = 0.05;
  options.adaptation.train.epochs = 30;
  Tasfar tasfar(options);
  SourceCalibration calib = tasfar.CalibrateFromPredictions(
      ensemble.Predict(src_x), src_y);
  EXPECT_GT(calib.tau, 0.0);

  // Target: in-distribution cluster + OOD inputs, labels near 1.8.
  Tensor tgt_x({150, 1});
  for (size_t i = 0; i < 150; ++i) {
    tgt_x.At(i, 0) =
        (i % 3 == 0) ? rng.Uniform(2.5, 3.5) : rng.Uniform(1.4, 1.9);
  }
  // Adapt member 0 using the ensemble's uncertainties.
  Rng adapt_rng(17);
  TasfarReport report = tasfar.AdaptWithPredictions(
      &ensemble.member(0), calib, tgt_x, ensemble.Predict(tgt_x),
      &adapt_rng);
  EXPECT_EQ(report.predictions.size(), 150u);
  EXPECT_EQ(report.num_confident + report.num_uncertain, 150u);
  ASSERT_NE(report.target_model, nullptr);
}

std::unique_ptr<Sequential> DropoutModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(2, 16, rng);
  m->Emplace<Relu>();
  m->Emplace<Dropout>(0.2, rng->NextU64());
  m->Emplace<Dense>(16, 1, rng);
  return m;
}

void ExpectIdentical(const std::vector<McPrediction>& a,
                     const std::vector<McPrediction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].mean.size(), b[i].mean.size());
    for (size_t j = 0; j < a[i].mean.size(); ++j) {
      EXPECT_EQ(a[i].mean[j], b[i].mean[j]);
      EXPECT_EQ(a[i].std[j], b[i].std[j]);
    }
  }
}

TEST(SourceEnsembleTest, PinnedStreamsDisagreeAcrossMembers) {
  // Source-derived members share weights; diversity comes entirely from
  // the per-member pinned dropout streams, so disagreement must be > 0.
  Rng rng(31);
  auto model = DropoutModel(&rng);
  DeepEnsemble ensemble = DeepEnsemble::FromSource(model.get(), 5, 0x5eed);
  Tensor x = Tensor::RandomNormal({16, 2}, &rng, 0.0, 2.0);
  double total_std = 0.0;
  for (const auto& p : ensemble.Predict(x)) total_std += p.std[0];
  EXPECT_GT(total_std, 0.0);
}

TEST(SourceEnsembleTest, EveryCallIsByteIdentical) {
  // Masks are pinned to the member index, not the call index — unlike MC
  // dropout, repeat calls return the same bytes.
  Rng rng(32);
  auto model = DropoutModel(&rng);
  DeepEnsemble ensemble = DeepEnsemble::FromSource(model.get(), 4, 0x5eed);
  Tensor x = Tensor::RandomNormal({9, 2}, &rng);
  ExpectIdentical(ensemble.Predict(x), ensemble.Predict(x));
}

TEST(SourceEnsembleTest, PredictIsByteIdenticalAtAnyThreadCount) {
  // The fan-out across ParallelFor (one task per member, serial reduction
  // in ascending member order) must be invisible in the bytes.
  auto run = [](size_t threads) {
    SetNumThreads(threads);
    Rng rng(33);
    auto model = DropoutModel(&rng);
    DeepEnsemble ensemble = DeepEnsemble::FromSource(model.get(), 5, 0xfeed);
    Tensor x = Tensor::RandomNormal({37, 2}, &rng);
    auto preds = ensemble.Predict(x);
    SetNumThreads(0);
    return preds;
  };
  auto a = run(1);
  auto b = run(2);
  auto c = run(8);
  ExpectIdentical(a, b);
  ExpectIdentical(a, c);
}

TEST(SourceEnsembleTest, PredictMeanEqualsSourcePrediction) {
  // Members share the source weights, so the deterministic ensemble mean
  // is the source model's own deterministic prediction.
  Rng rng(34);
  auto model = DropoutModel(&rng);
  DeepEnsemble ensemble = DeepEnsemble::FromSource(model.get(), 3, 0x5eed);
  Tensor x = Tensor::RandomNormal({7, 2}, &rng);
  Tensor mean = ensemble.PredictMean(x);
  Tensor source = model->Forward(x, /*training=*/false);
  EXPECT_NEAR(mean.MaxAbsDiff(source), 0.0, 1e-12);
}

TEST(SourceEnsembleTest, SteadyStatePredictAllocatesNothing) {
  // Member passes run on per-thread Workspace arenas (docs/MEMORY.md):
  // once warm, Predict must not allocate a single tensor buffer.
  Rng rng(35);
  auto model = DropoutModel(&rng);
  DeepEnsemble ensemble = DeepEnsemble::FromSource(model.get(), 5, 0x5eed);
  Tensor x = Tensor::RandomNormal({32, 2}, &rng);
  for (int warm = 0; warm < 3; ++warm) (void)ensemble.Predict(x);
  const TensorAllocStats before = GetTensorAllocStats();
  auto preds = ensemble.Predict(x);
  const TensorAllocStats after = GetTensorAllocStats();
  EXPECT_EQ(after.alloc_count, before.alloc_count);
  EXPECT_GT(after.workspace_reuses, before.workspace_reuses);
  ASSERT_EQ(preds.size(), 32u);
}

TEST(SourceEnsembleTest, ReseedRerollsTheMemberStreams) {
  Rng rng(36);
  auto model = DropoutModel(&rng);
  DeepEnsemble ensemble = DeepEnsemble::FromSource(model.get(), 4, 0x5eed);
  Tensor x = Tensor::RandomNormal({10, 2}, &rng, 0.0, 2.0);
  auto original = ensemble.Predict(x);
  ensemble.Reseed(0xabcdULL);
  auto rerolled = ensemble.Predict(x);
  double diff = 0.0;
  for (size_t i = 0; i < original.size(); ++i) {
    diff += std::fabs(original[i].mean[0] - rerolled[i].mean[0]);
  }
  EXPECT_GT(diff, 0.0);
  ensemble.Reseed(0x5eedULL);  // Replay: back to the original bytes.
  ExpectIdentical(ensemble.Predict(x), original);
}

TEST(SourceEnsembleTest, CloneRebuildsOverTheNewModel) {
  Rng rng(37);
  auto model = DropoutModel(&rng);
  DeepEnsemble ensemble = DeepEnsemble::FromSource(model.get(), 3, 0x5eed);
  auto replica_model = model->CloneSequential();
  auto clone = ensemble.Clone(replica_model.get());
  EXPECT_STREQ(clone->name(), "ensemble");
  Tensor x = Tensor::RandomNormal({8, 2}, &rng);
  ExpectIdentical(ensemble.Predict(x), clone->Predict(x));
}

TEST(DeepEnsembleDeathTest, SingleMemberRejected) {
  Rng rng(19);
  std::vector<std::unique_ptr<Sequential>> one;
  one.push_back(SmallModel(&rng));
  EXPECT_DEATH(DeepEnsemble{std::move(one)}, "at least two");
}

}  // namespace
}  // namespace tasfar
