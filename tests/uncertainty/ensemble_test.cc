#include "uncertainty/ensemble.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "core/tasfar.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> SmallModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(1, 16, rng);
  m->Emplace<Relu>();
  m->Emplace<Dense>(16, 1, rng);
  return m;
}

DeepEnsemble TrainedEnsemble(size_t members, uint64_t seed) {
  Rng rng(seed);
  Tensor x({200, 1});
  Tensor y({200, 1});
  for (size_t i = 0; i < 200; ++i) {
    x.At(i, 0) = rng.Uniform(-2.0, 2.0);
    y.At(i, 0) = x.At(i, 0) + rng.Normal(0.0, 0.05);
  }
  TrainConfig tc;
  tc.epochs = 40;
  return DeepEnsemble::Train(SmallModel, x, y, members, tc, 0.01, &rng);
}

TEST(DeepEnsembleTest, PredictsPerSampleWithDisagreement) {
  DeepEnsemble ensemble = TrainedEnsemble(3, 1);
  EXPECT_EQ(ensemble.num_members(), 3u);
  Rng rng(2);
  Tensor x = Tensor::RandomNormal({10, 1}, &rng);
  auto preds = ensemble.Predict(x);
  ASSERT_EQ(preds.size(), 10u);
  for (const auto& p : preds) {
    EXPECT_EQ(p.mean.size(), 1u);
    EXPECT_GE(p.std[0], 0.0);
  }
}

TEST(DeepEnsembleTest, InDistributionPredictionsAccurate) {
  DeepEnsemble ensemble = TrainedEnsemble(3, 3);
  Tensor x({3, 1}, {-1.0, 0.0, 1.0});
  Tensor mean = ensemble.PredictMean(x);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(mean.At(i, 0), x.At(i, 0), 0.15);
  }
}

TEST(DeepEnsembleTest, DisagreementGrowsOutOfDistribution) {
  DeepEnsemble ensemble = TrainedEnsemble(4, 5);
  Tensor in_dist({20, 1});
  Tensor out_dist({20, 1});
  Rng rng(7);
  for (size_t i = 0; i < 20; ++i) {
    in_dist.At(i, 0) = rng.Uniform(-1.5, 1.5);
    out_dist.At(i, 0) = rng.Uniform(5.0, 8.0);
  }
  double u_in = 0.0, u_out = 0.0;
  for (const auto& p : ensemble.Predict(in_dist)) {
    u_in += p.ScalarUncertainty();
  }
  for (const auto& p : ensemble.Predict(out_dist)) {
    u_out += p.ScalarUncertainty();
  }
  EXPECT_GT(u_out, u_in);
}

TEST(DeepEnsembleTest, MeanMatchesMemberAverage) {
  DeepEnsemble ensemble = TrainedEnsemble(2, 9);
  Rng rng(11);
  Tensor x = Tensor::RandomNormal({5, 1}, &rng);
  Tensor mean = ensemble.PredictMean(x);
  Tensor manual = (ensemble.member(0).Forward(x, false) +
                   ensemble.member(1).Forward(x, false)) /
                  2.0;
  EXPECT_NEAR(mean.MaxAbsDiff(manual), 0.0, 1e-12);
}

TEST(DeepEnsembleTest, PluggableIntoTasfarPipeline) {
  // The paper's orthogonality claim, end to end: calibrate and adapt with
  // ensemble predictions instead of MC dropout.
  Rng rng(13);
  Tensor src_x({300, 1});
  Tensor src_y({300, 1});
  for (size_t i = 0; i < 300; ++i) {
    src_x.At(i, 0) = rng.Uniform(-2.0, 2.0);
    src_y.At(i, 0) = src_x.At(i, 0) + rng.Normal(0.0, 0.05);
  }
  TrainConfig tc;
  tc.epochs = 40;
  DeepEnsemble ensemble =
      DeepEnsemble::Train(SmallModel, src_x, src_y, 3, tc, 0.01, &rng);

  TasfarOptions options;
  options.grid_cell_size = 0.05;
  options.adaptation.train.epochs = 30;
  Tasfar tasfar(options);
  SourceCalibration calib = tasfar.CalibrateFromPredictions(
      ensemble.Predict(src_x), src_y);
  EXPECT_GT(calib.tau, 0.0);

  // Target: in-distribution cluster + OOD inputs, labels near 1.8.
  Tensor tgt_x({150, 1});
  for (size_t i = 0; i < 150; ++i) {
    tgt_x.At(i, 0) =
        (i % 3 == 0) ? rng.Uniform(2.5, 3.5) : rng.Uniform(1.4, 1.9);
  }
  // Adapt member 0 using the ensemble's uncertainties.
  Rng adapt_rng(17);
  TasfarReport report = tasfar.AdaptWithPredictions(
      &ensemble.member(0), calib, tgt_x, ensemble.Predict(tgt_x),
      &adapt_rng);
  EXPECT_EQ(report.predictions.size(), 150u);
  EXPECT_EQ(report.num_confident + report.num_uncertain, 150u);
  ASSERT_NE(report.target_model, nullptr);
}

TEST(DeepEnsembleDeathTest, SingleMemberRejected) {
  Rng rng(19);
  std::vector<std::unique_ptr<Sequential>> one;
  one.push_back(SmallModel(&rng));
  EXPECT_DEATH(DeepEnsemble{std::move(one)}, "at least two");
}

}  // namespace
}  // namespace tasfar
