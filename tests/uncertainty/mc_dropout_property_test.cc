// Property-style sweeps over MC dropout: estimator consistency across
// dropout rates and sample counts.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "uncertainty/mc_dropout.h"
#include "util/stats.h"

namespace tasfar {
namespace {

using Param = std::tuple<double /*rate*/, size_t /*samples*/>;

class McDropoutPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  double rate() const { return std::get<0>(GetParam()); }
  size_t samples() const { return std::get<1>(GetParam()); }

  std::unique_ptr<Sequential> Model(uint64_t seed) const {
    Rng rng(seed);
    auto m = std::make_unique<Sequential>();
    m->Emplace<Dense>(2, 24, &rng);
    m->Emplace<Relu>();
    m->Emplace<Dropout>(rate(), rng.NextU64());
    m->Emplace<Dense>(24, 1, &rng);
    return m;
  }
};

TEST_P(McDropoutPropertyTest, StdsAreFiniteAndNonNegative) {
  auto model = Model(1);
  McDropoutPredictor predictor(model.get(), samples());
  Rng rng(2);
  Tensor x = Tensor::RandomNormal({12, 2}, &rng);
  for (const McPrediction& p : predictor.Predict(x)) {
    EXPECT_GE(p.std[0], 0.0);
    EXPECT_TRUE(std::isfinite(p.std[0]));
    EXPECT_TRUE(std::isfinite(p.mean[0]));
  }
}

TEST_P(McDropoutPropertyTest, HigherRateMoreUncertainty) {
  if (rate() == 0.0) return;
  auto model = Model(3);
  // Rebuild the same weights with a higher dropout rate by copying params.
  Rng rng(3);
  auto higher = std::make_unique<Sequential>();
  higher->Emplace<Dense>(2, 24, &rng);
  higher->Emplace<Relu>();
  higher->Emplace<Dropout>(std::min(0.6, rate() + 0.25), rng.NextU64());
  higher->Emplace<Dense>(24, 1, &rng);
  higher->CopyParamsFrom(*model);

  Rng data_rng(5);
  Tensor x = Tensor::RandomNormal({40, 2}, &data_rng);
  McDropoutPredictor p_low(model.get(), samples());
  McDropoutPredictor p_high(higher.get(), samples());
  double u_low = 0.0, u_high = 0.0;
  for (const auto& p : p_low.Predict(x)) u_low += p.std[0];
  for (const auto& p : p_high.Predict(x)) u_high += p.std[0];
  EXPECT_GT(u_high, u_low);
}

TEST_P(McDropoutPropertyTest, MeanEstimateStabilizesWithSamples) {
  // The spread of the MC mean across independent estimates shrinks as the
  // sample count grows (law of large numbers on the dropout ensemble).
  if (rate() == 0.0) return;
  auto model = Model(7);
  Rng rng(9);
  Tensor x = Tensor::RandomNormal({1, 2}, &rng, 0.0, 2.0);
  auto spread_of = [&](size_t s) {
    std::vector<double> means;
    McDropoutPredictor predictor(model.get(), s);
    for (int rep = 0; rep < 12; ++rep) {
      means.push_back(predictor.Predict(x)[0].mean[0]);
    }
    return stats::StdDev(means);
  };
  EXPECT_LE(spread_of(64), spread_of(4) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, McDropoutPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3),
                       ::testing::Values(5u, 20u)),
    [](const auto& param_info) {
      return "r" +
             std::to_string(
                 static_cast<int>(std::get<0>(param_info.param) * 100)) +
             "_s" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace tasfar
