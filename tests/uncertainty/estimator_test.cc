// The UncertaintyEstimator seam (docs/UNCERTAINTY.md): backend labels and
// wire values, the MakeEstimator factory, and the cross-backend pieces of
// the estimator contract (Reseed replay, Clone over a new model).

#include "uncertainty/estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "uncertainty/mc_dropout.h"
#include "util/rng.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> DropoutModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(2, 16, rng);
  m->Emplace<Relu>();
  m->Emplace<Dropout>(0.2, rng->NextU64());
  m->Emplace<Dense>(16, 1, rng);
  return m;
}

EstimatorConfig ConfigFor(UncertaintyBackend backend) {
  EstimatorConfig config;
  config.backend = backend;
  return config;
}

void ExpectIdentical(const std::vector<McPrediction>& a,
                     const std::vector<McPrediction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].mean.size(), b[i].mean.size());
    for (size_t j = 0; j < a[i].mean.size(); ++j) {
      EXPECT_EQ(a[i].mean[j], b[i].mean[j]);
      EXPECT_EQ(a[i].std[j], b[i].std[j]);
    }
  }
}

TEST(UncertaintyBackendTest, NamesAreStable) {
  EXPECT_STREQ(UncertaintyBackendName(UncertaintyBackend::kMcDropout),
               "mc_dropout");
  EXPECT_STREQ(UncertaintyBackendName(UncertaintyBackend::kDeepEnsemble),
               "ensemble");
  EXPECT_STREQ(UncertaintyBackendName(UncertaintyBackend::kLastLayerLaplace),
               "laplace");
}

TEST(UncertaintyBackendTest, NameParseRoundTrips) {
  for (UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    UncertaintyBackend parsed;
    ASSERT_TRUE(
        ParseUncertaintyBackendName(UncertaintyBackendName(backend), &parsed));
    EXPECT_EQ(parsed, backend);
  }
  UncertaintyBackend unused;
  EXPECT_FALSE(ParseUncertaintyBackendName("dropout", &unused));
  EXPECT_FALSE(ParseUncertaintyBackendName("", &unused));
}

TEST(UncertaintyBackendTest, WireParseRoundTrips) {
  // The wire values are frozen (docs/PROTOCOL.md §Uncertainty backends).
  for (UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    UncertaintyBackend parsed;
    ASSERT_TRUE(ParseUncertaintyBackendWire(static_cast<uint8_t>(backend),
                                            &parsed));
    EXPECT_EQ(parsed, backend);
  }
  UncertaintyBackend out = UncertaintyBackend::kDeepEnsemble;
  EXPECT_FALSE(ParseUncertaintyBackendWire(3, &out));
  EXPECT_EQ(out, UncertaintyBackend::kDeepEnsemble);  // Untouched.
  EXPECT_FALSE(ParseUncertaintyBackendWire(255, &out));
}

TEST(MakeEstimatorTest, BuildsEveryBackendWithMatchingName) {
  Rng rng(1);
  auto model = DropoutModel(&rng);
  for (UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    auto estimator = MakeEstimator(model.get(), ConfigFor(backend));
    ASSERT_NE(estimator, nullptr);
    EXPECT_STREQ(estimator->name(), UncertaintyBackendName(backend));
  }
}

TEST(MakeEstimatorTest, EveryBackendPredictsFiniteStats) {
  Rng rng(2);
  auto model = DropoutModel(&rng);
  Tensor x = Tensor::RandomNormal({9, 2}, &rng);
  for (UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    auto estimator = MakeEstimator(model.get(), ConfigFor(backend));
    auto preds = estimator->Predict(x);
    ASSERT_EQ(preds.size(), 9u) << estimator->name();
    for (const auto& p : preds) {
      ASSERT_EQ(p.mean.size(), 1u);
      ASSERT_EQ(p.std.size(), 1u);
      EXPECT_TRUE(std::isfinite(p.mean[0])) << estimator->name();
      EXPECT_GE(p.std[0], 0.0) << estimator->name();
    }
    Tensor mean = estimator->PredictMean(x);
    EXPECT_EQ(mean.dim(0), 9u);
  }
}

TEST(MakeEstimatorTest, McDropoutDefaultMatchesDirectConstruction) {
  // The golden-tier guarantee in miniature: the factory's default backend
  // is the exact McDropoutPredictor the pipeline used before the seam
  // existed — same seed, same call-index streams, byte for byte.
  Rng rng(3);
  auto model = DropoutModel(&rng);
  Tensor x = Tensor::RandomNormal({11, 2}, &rng);
  EstimatorConfig config;  // Defaults: mc_dropout, 20 samples, seed 0x5eed.
  auto via_factory = MakeEstimator(model.get(), config);
  McDropoutPredictor direct(model.get(), config.mc_samples, config.batch_size,
                            config.seed);
  ExpectIdentical(via_factory->Predict(x), direct.Predict(x));
  ExpectIdentical(via_factory->Predict(x), direct.Predict(x));  // Call #2.
}

TEST(MakeEstimatorTest, ReseedReplaysTheCallSequence) {
  // Contract: after Reseed(s) the call sequence replays as if constructed
  // with seed s — for every backend (trivially for the deterministic ones).
  Rng rng(4);
  auto model = DropoutModel(&rng);
  Tensor x = Tensor::RandomNormal({6, 2}, &rng);
  for (UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    auto estimator = MakeEstimator(model.get(), ConfigFor(backend));
    auto first = estimator->Predict(x);
    auto second = estimator->Predict(x);
    estimator->Reseed(ConfigFor(backend).seed);
    ExpectIdentical(estimator->Predict(x), first);
    ExpectIdentical(estimator->Predict(x), second);
  }
}

TEST(MakeEstimatorTest, CloneReproducesTheEstimatorOverANewModel) {
  // Serve replicas rebuild their estimator via Clone after an adapted
  // model swap; the clone must behave as a fresh factory build.
  Rng rng(5);
  auto model = DropoutModel(&rng);
  Tensor x = Tensor::RandomNormal({6, 2}, &rng);
  for (UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    auto original = MakeEstimator(model.get(), ConfigFor(backend));
    auto replica_model = model->CloneSequential();
    auto clone = original->Clone(replica_model.get());
    ASSERT_NE(clone, nullptr);
    EXPECT_STREQ(clone->name(), original->name());
    auto fresh = MakeEstimator(replica_model.get(), ConfigFor(backend));
    ExpectIdentical(clone->Predict(x), fresh->Predict(x));
  }
}

TEST(MakeEstimatorDeathTest, NullModelAborts) {
  EXPECT_DEATH(MakeEstimator(nullptr, EstimatorConfig{}), "");
}

}  // namespace
}  // namespace tasfar
