#include "uncertainty/mc_dropout.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> DropoutModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(2, 16, rng);
  m->Emplace<Relu>();
  m->Emplace<Dropout>(0.2, rng->NextU64());
  m->Emplace<Dense>(16, 1, rng);
  return m;
}

TEST(McPredictionTest, ScalarUncertaintyIsL2OfStds) {
  McPrediction p;
  p.std = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.ScalarUncertainty(), 5.0);
  McPrediction q;
  q.std = {2.0};
  EXPECT_DOUBLE_EQ(q.ScalarUncertainty(), 2.0);
}

TEST(McDropoutTest, PredictsPerSample) {
  Rng rng(1);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 10);
  Tensor x = Tensor::RandomNormal({7, 2}, &rng);
  auto preds = predictor.Predict(x);
  ASSERT_EQ(preds.size(), 7u);
  for (const auto& p : preds) {
    EXPECT_EQ(p.mean.size(), 1u);
    EXPECT_EQ(p.std.size(), 1u);
    EXPECT_GE(p.std[0], 0.0);
  }
}

TEST(McDropoutTest, DropoutProducesNonzeroUncertainty) {
  Rng rng(2);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 20);
  Tensor x = Tensor::RandomNormal({20, 2}, &rng, 0.0, 2.0);
  auto preds = predictor.Predict(x);
  double total_std = 0.0;
  for (const auto& p : preds) total_std += p.std[0];
  EXPECT_GT(total_std, 0.0);
}

TEST(McDropoutTest, NoDropoutMeansZeroUncertainty) {
  Rng rng(3);
  Sequential model;
  model.Emplace<Dense>(2, 4, &rng);
  model.Emplace<Relu>();
  model.Emplace<Dense>(4, 1, &rng);
  McDropoutPredictor predictor(&model, 5);
  Tensor x = Tensor::RandomNormal({5, 2}, &rng);
  for (const auto& p : predictor.Predict(x)) {
    EXPECT_NEAR(p.std[0], 0.0, 1e-6);  // FP round-off in sum-of-squares.
  }
}

TEST(McDropoutTest, MeanApproximatesDeterministicPrediction) {
  Rng rng(4);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 200);
  Tensor x = Tensor::RandomNormal({5, 2}, &rng);
  auto preds = predictor.Predict(x);
  Tensor det = predictor.PredictMean(x);
  for (size_t i = 0; i < preds.size(); ++i) {
    // MC mean is an unbiased estimate of the dropout-expected output; for
    // this near-linear head it lands close to the deterministic pass.
    EXPECT_NEAR(preds[i].mean[0], det.At(i, 0),
                5.0 * preds[i].std[0] / std::sqrt(200.0) + 0.05);
  }
}

TEST(McDropoutTest, MultiOutputStdsPerDim) {
  Rng rng(5);
  Sequential model;
  model.Emplace<Dense>(3, 8, &rng);
  model.Emplace<Dropout>(0.5, 99);
  model.Emplace<Dense>(8, 2, &rng);
  McDropoutPredictor predictor(&model, 15);
  Tensor x = Tensor::RandomNormal({4, 3}, &rng);
  auto preds = predictor.Predict(x);
  for (const auto& p : preds) {
    EXPECT_EQ(p.mean.size(), 2u);
    EXPECT_EQ(p.std.size(), 2u);
  }
}

TEST(McDropoutTest, LargerInputsLargerUncertainty) {
  // Dropout noise scales with activation magnitude, the property the
  // confidence classifier leans on (far-from-distribution inputs excite
  // larger activations and thus larger predictive variance).
  Rng rng(6);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 50);
  Tensor small = Tensor::RandomNormal({30, 2}, &rng, 0.0, 0.1);
  Tensor large = Tensor::RandomNormal({30, 2}, &rng, 0.0, 5.0);
  auto preds_small = predictor.Predict(small);
  auto preds_large = predictor.Predict(large);
  double u_small = 0.0, u_large = 0.0;
  for (const auto& p : preds_small) u_small += p.ScalarUncertainty();
  for (const auto& p : preds_large) u_large += p.ScalarUncertainty();
  EXPECT_GT(u_large, u_small);
}

TEST(McDropoutTest, EmptyInputReturnsEmpty) {
  Rng rng(20);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 5);
  Tensor empty({0, 2});
  EXPECT_TRUE(predictor.Predict(empty).empty());
  Tensor mean = predictor.PredictMean(empty);
  EXPECT_EQ(mean.rank(), 2u);
  EXPECT_EQ(mean.dim(0), 0u);
}

TEST(McDropoutTest, RowsBelowBatchSizeAreAllPredicted) {
  // Regression: n < batch_size must forward one short batch, not drop or
  // pad rows.
  Rng rng(21);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 5, /*batch_size=*/64);
  Tensor x = Tensor::RandomNormal({3, 2}, &rng);
  auto preds = predictor.Predict(x);
  ASSERT_EQ(preds.size(), 3u);
  for (const auto& p : preds) EXPECT_TRUE(std::isfinite(p.mean[0]));
}

TEST(McDropoutTest, BatchSizeDoesNotChangeResults) {
  // Regression: n % batch_size != 0 leaves a trailing partial batch; the
  // split must be invisible in the outputs (same seed ⇒ same predictions
  // whatever the batch size, since dropout masks are drawn per pass, not
  // per batch-row-count — the model here is row-independent Dense/ReLU).
  Rng rng(22);
  Sequential model;
  model.Emplace<Dense>(2, 8, &rng);
  model.Emplace<Relu>();
  model.Emplace<Dense>(8, 1, &rng);
  Tensor x = Tensor::RandomNormal({13, 2}, &rng);
  McDropoutPredictor whole(&model, 5, /*batch_size=*/64);
  McDropoutPredictor split(&model, 5, /*batch_size=*/4);  // 13 = 3*4 + 1.
  auto a = whole.Predict(x);
  auto b = split.Predict(x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].mean[0], b[i].mean[0], 1e-12);
  }
}

TEST(McDropoutTest, PredictIsByteIdenticalAtAnyThreadCount) {
  // The determinism contract of docs/THREADING.md: same root seed + same
  // call index ⇒ identical McPredictions at 1, 2, and 8 threads.
  auto run = [](size_t threads) {
    SetNumThreads(threads);
    Rng rng(23);
    auto model = DropoutModel(&rng);
    McDropoutPredictor predictor(model.get(), 20, 8, /*seed=*/0xfeedULL);
    Tensor x = Tensor::RandomNormal({37, 2}, &rng);
    auto first = predictor.Predict(x);
    auto second = predictor.Predict(x);  // Call #2 (distinct stream).
    SetNumThreads(0);
    return std::make_pair(first, second);
  };
  auto [a1, a2] = run(1);
  auto [b1, b2] = run(2);
  auto [c1, c2] = run(8);
  auto expect_identical = [](const std::vector<McPrediction>& x_preds,
                             const std::vector<McPrediction>& y_preds) {
    ASSERT_EQ(x_preds.size(), y_preds.size());
    for (size_t i = 0; i < x_preds.size(); ++i) {
      ASSERT_EQ(x_preds[i].mean.size(), y_preds[i].mean.size());
      for (size_t j = 0; j < x_preds[i].mean.size(); ++j) {
        // EXPECT_EQ (not NEAR): byte-identical is the contract.
        EXPECT_EQ(x_preds[i].mean[j], y_preds[i].mean[j]);
        EXPECT_EQ(x_preds[i].std[j], y_preds[i].std[j]);
      }
    }
  };
  expect_identical(a1, b1);
  expect_identical(a1, c1);
  expect_identical(a2, b2);
  expect_identical(a2, c2);
}

TEST(McDropoutTest, SuccessiveCallsDrawFreshDropoutEnsembles) {
  Rng rng(24);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 10);
  Tensor x = Tensor::RandomNormal({6, 2}, &rng, 0.0, 2.0);
  auto first = predictor.Predict(x);
  auto second = predictor.Predict(x);
  double diff = 0.0;
  for (size_t i = 0; i < first.size(); ++i) {
    diff += std::fabs(first[i].mean[0] - second[i].mean[0]);
  }
  EXPECT_GT(diff, 0.0);  // Distinct per-call streams.
}

TEST(McDropoutTest, PredictDoesNotMutateTheWrappedModel) {
  Rng rng(25);
  auto model = DropoutModel(&rng);
  Tensor x = Tensor::RandomNormal({5, 2}, &rng);
  Tensor before = model->Forward(x, /*training=*/false);
  McDropoutPredictor predictor(model.get(), 10);
  predictor.Predict(x);
  Tensor after = model->Forward(x, /*training=*/false);
  EXPECT_DOUBLE_EQ(before.MaxAbsDiff(after), 0.0);
}

TEST(McDropoutTest, PooledReplicasTrackModelWeightUpdates) {
  Rng rng(11);
  auto model = DropoutModel(&rng);
  Tensor x = Tensor::RandomNormal({5, 2}, &rng);
  McDropoutPredictor warm(model.get(), 10, 64, 0x5eedULL);
  (void)warm.Predict(x);  // Call index 0 — fills the replica pool.

  // Fine-tune: mutate every parameter in place. Copy-on-write detaches the
  // model's buffers from the pooled replicas' shared views, so a replica
  // that skipped the checkout re-share would keep serving the old weights.
  for (Tensor* p : model->Params()) *p *= 1.5;

  auto pooled = warm.Predict(x);  // Call index 1, pooled replicas.

  // A fresh predictor clones its replicas directly from the updated model;
  // its call-index-1 ensemble must match the pooled one byte for byte.
  McDropoutPredictor fresh(model.get(), 10, 64, 0x5eedULL);
  (void)fresh.Predict(x);  // Burn call index 0.
  auto expect = fresh.Predict(x);
  ASSERT_EQ(pooled.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(pooled[i].mean.size(), expect[i].mean.size());
    for (size_t j = 0; j < expect[i].mean.size(); ++j) {
      EXPECT_EQ(pooled[i].mean[j], expect[i].mean[j]);
      EXPECT_EQ(pooled[i].std[j], expect[i].std[j]);
    }
  }
}

TEST(McDropoutDeathTest, TooFewSamplesAborts) {
  Rng rng(7);
  auto model = DropoutModel(&rng);
  EXPECT_DEATH(McDropoutPredictor(model.get(), 1), ">= 2 samples");
}

}  // namespace
}  // namespace tasfar
