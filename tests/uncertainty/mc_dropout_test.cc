#include "uncertainty/mc_dropout.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "util/rng.h"

namespace tasfar {
namespace {

std::unique_ptr<Sequential> DropoutModel(Rng* rng) {
  auto m = std::make_unique<Sequential>();
  m->Emplace<Dense>(2, 16, rng);
  m->Emplace<Relu>();
  m->Emplace<Dropout>(0.2, rng->NextU64());
  m->Emplace<Dense>(16, 1, rng);
  return m;
}

TEST(McPredictionTest, ScalarUncertaintyIsL2OfStds) {
  McPrediction p;
  p.std = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.ScalarUncertainty(), 5.0);
  McPrediction q;
  q.std = {2.0};
  EXPECT_DOUBLE_EQ(q.ScalarUncertainty(), 2.0);
}

TEST(McDropoutTest, PredictsPerSample) {
  Rng rng(1);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 10);
  Tensor x = Tensor::RandomNormal({7, 2}, &rng);
  auto preds = predictor.Predict(x);
  ASSERT_EQ(preds.size(), 7u);
  for (const auto& p : preds) {
    EXPECT_EQ(p.mean.size(), 1u);
    EXPECT_EQ(p.std.size(), 1u);
    EXPECT_GE(p.std[0], 0.0);
  }
}

TEST(McDropoutTest, DropoutProducesNonzeroUncertainty) {
  Rng rng(2);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 20);
  Tensor x = Tensor::RandomNormal({20, 2}, &rng, 0.0, 2.0);
  auto preds = predictor.Predict(x);
  double total_std = 0.0;
  for (const auto& p : preds) total_std += p.std[0];
  EXPECT_GT(total_std, 0.0);
}

TEST(McDropoutTest, NoDropoutMeansZeroUncertainty) {
  Rng rng(3);
  Sequential model;
  model.Emplace<Dense>(2, 4, &rng);
  model.Emplace<Relu>();
  model.Emplace<Dense>(4, 1, &rng);
  McDropoutPredictor predictor(&model, 5);
  Tensor x = Tensor::RandomNormal({5, 2}, &rng);
  for (const auto& p : predictor.Predict(x)) {
    EXPECT_NEAR(p.std[0], 0.0, 1e-6);  // FP round-off in sum-of-squares.
  }
}

TEST(McDropoutTest, MeanApproximatesDeterministicPrediction) {
  Rng rng(4);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 200);
  Tensor x = Tensor::RandomNormal({5, 2}, &rng);
  auto preds = predictor.Predict(x);
  Tensor det = predictor.PredictMean(x);
  for (size_t i = 0; i < preds.size(); ++i) {
    // MC mean is an unbiased estimate of the dropout-expected output; for
    // this near-linear head it lands close to the deterministic pass.
    EXPECT_NEAR(preds[i].mean[0], det.At(i, 0),
                5.0 * preds[i].std[0] / std::sqrt(200.0) + 0.05);
  }
}

TEST(McDropoutTest, MultiOutputStdsPerDim) {
  Rng rng(5);
  Sequential model;
  model.Emplace<Dense>(3, 8, &rng);
  model.Emplace<Dropout>(0.5, 99);
  model.Emplace<Dense>(8, 2, &rng);
  McDropoutPredictor predictor(&model, 15);
  Tensor x = Tensor::RandomNormal({4, 3}, &rng);
  auto preds = predictor.Predict(x);
  for (const auto& p : preds) {
    EXPECT_EQ(p.mean.size(), 2u);
    EXPECT_EQ(p.std.size(), 2u);
  }
}

TEST(McDropoutTest, LargerInputsLargerUncertainty) {
  // Dropout noise scales with activation magnitude, the property the
  // confidence classifier leans on (far-from-distribution inputs excite
  // larger activations and thus larger predictive variance).
  Rng rng(6);
  auto model = DropoutModel(&rng);
  McDropoutPredictor predictor(model.get(), 50);
  Tensor small = Tensor::RandomNormal({30, 2}, &rng, 0.0, 0.1);
  Tensor large = Tensor::RandomNormal({30, 2}, &rng, 0.0, 5.0);
  auto preds_small = predictor.Predict(small);
  auto preds_large = predictor.Predict(large);
  double u_small = 0.0, u_large = 0.0;
  for (const auto& p : preds_small) u_small += p.ScalarUncertainty();
  for (const auto& p : preds_large) u_large += p.ScalarUncertainty();
  EXPECT_GT(u_large, u_small);
}

TEST(McDropoutDeathTest, TooFewSamplesAborts) {
  Rng rng(7);
  auto model = DropoutModel(&rng);
  EXPECT_DEATH(McDropoutPredictor(model.get(), 1), ">= 2 samples");
}

}  // namespace
}  // namespace tasfar
