#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "util/thread_pool.h"

namespace tasfar::obs {
namespace {

/// Enables tracing with a clean buffer per test and restores the previous
/// state afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TracingEnabled();
    SetTracingEnabled(true);
    ClearTraceEvents();
  }
  void TearDown() override {
    ClearTraceEvents();
    SetTraceCapacityForTest(1 << 20);
    SetTracingEnabled(was_enabled_);
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(TraceTest, SpanRecordsOneEvent) {
  { TASFAR_TRACE_SPAN("unit_single"); }
  std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_single");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[0].tid, CurrentThreadId());
}

TEST_F(TraceTest, NestedSpansFormWellFormedPairs) {
  // ISSUE acceptance: span nesting produces well-formed begin/end pairs —
  // children complete before parents, sit at depth + 1 on the same
  // thread, and their intervals are contained in the parent's.
  {
    TASFAR_TRACE_SPAN("outer");
    {
      TASFAR_TRACE_SPAN("middle");
      { TASFAR_TRACE_SPAN("inner"); }
    }
  }
  std::vector<TraceEvent> events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: innermost first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "middle");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  for (size_t child = 0; child + 1 < events.size(); ++child) {
    const TraceEvent& c = events[child];
    const TraceEvent& p = events[child + 1];
    EXPECT_EQ(c.tid, p.tid);
    EXPECT_GE(c.start_us, p.start_us);
    EXPECT_LE(c.start_us + c.dur_us, p.start_us + p.dur_us);
  }
}

TEST_F(TraceTest, SpansOnPoolWorkersCarryTheirOwnThreadIds) {
  const size_t prev_threads = GetNumThreads();
  SetNumThreads(4);
  ParallelFor(0, 64, /*grain=*/1,
              [](size_t) { TASFAR_TRACE_SPAN("pool_span"); });
  SetNumThreads(prev_threads);
  std::vector<TraceEvent> events = SnapshotTraceEvents();
  // 64 body spans plus the pool's own "thread_pool.chunk" wrappers.
  std::map<int, int> per_tid;
  size_t body_spans = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "pool_span") {
      EXPECT_STREQ(e.name, "thread_pool.chunk");
      continue;
    }
    ++body_spans;
    ++per_tid[e.tid];
  }
  EXPECT_EQ(body_spans, 64u);
  EXPECT_GE(per_tid.size(), 1u);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetTracingEnabled(false);
  { TASFAR_TRACE_SPAN("invisible"); }
  EXPECT_TRUE(SnapshotTraceEvents().empty());
  SetTracingEnabled(true);
}

TEST_F(TraceTest, CapacityLimitsBufferAndCountsDrops) {
  SetTraceCapacityForTest(2);
  { TASFAR_TRACE_SPAN("a"); }
  { TASFAR_TRACE_SPAN("b"); }
  { TASFAR_TRACE_SPAN("c"); }
  EXPECT_EQ(SnapshotTraceEvents().size(), 2u);
  EXPECT_GE(DroppedTraceEvents(), 1u);
}

TEST_F(TraceTest, EightThreadWrapHammerCountsEveryDropExactly) {
  // ISSUE satellite: hammer the bounded trace buffer from 8 threads past
  // its capacity and assert the drop counter is *exact* — every recorded
  // span is either buffered or counted, nothing lost to a race.
  const size_t prev_threads = GetNumThreads();
  SetNumThreads(8);
  constexpr size_t kCapacity = 1000;
  constexpr size_t kIters = 3200;
  SetTraceCapacityForTest(kCapacity);

  // Span arithmetic (deterministic, see ThreadPool::ParallelFor): 8
  // workers target 8*4 chunks, so range 3200 / chunk 100 = 32 queued
  // chunks, each wrapped in one "thread_pool.chunk" span, plus one body
  // span per iteration.
  ParallelFor(0, kIters, /*grain=*/1,
              [](size_t) { TASFAR_TRACE_SPAN("hammer"); });
  SetNumThreads(prev_threads);

  constexpr size_t kTotalSpans = kIters + 32;
  EXPECT_EQ(SnapshotTraceEvents().size(), kCapacity);
  EXPECT_EQ(DroppedTraceEvents(), kTotalSpans - kCapacity);

  // A buffer that wrapped mid-burst must still export loadable JSON.
  const std::string path = ::testing::TempDir() + "/tasfar_trace_wrap.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  const std::string content = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  long braces = 0, brackets = 0;
  for (char ch : content) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, AmbientContextFlowsAcrossParallelFor) {
  // One root span on the submitting thread: every queued chunk span must
  // inherit its trace id — the cross-thread link the Perfetto flow
  // arrows are drawn from.
  const size_t prev_threads = GetNumThreads();
  SetNumThreads(4);
  {
    TASFAR_TRACE_SPAN("flow_root");
    ParallelFor(0, 256, /*grain=*/1, [](size_t) {});
  }
  SetNumThreads(prev_threads);
  std::vector<TraceEvent> events = SnapshotTraceEvents();
  uint64_t root_trace = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "flow_root") root_trace = e.trace_id;
  }
  ASSERT_NE(root_trace, 0u);
  size_t chunks = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) != "thread_pool.chunk") continue;
    ++chunks;
    EXPECT_EQ(e.trace_id, root_trace);
  }
  EXPECT_GT(chunks, 0u);
}

TEST_F(TraceTest, ChromeTraceIsWellFormedJson) {
  {
    TASFAR_TRACE_SPAN("chrome_outer");
    { TASFAR_TRACE_SPAN("chrome_inner"); }
  }
  const std::string path = ::testing::TempDir() + "/tasfar_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path));
  const std::string content = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(content.find("\"name\": \"chrome_inner\""), std::string::npos);
  EXPECT_NE(content.find("\"name\": \"chrome_outer\""), std::string::npos);
  // Braces and brackets must balance for chrome://tracing to load it.
  long braces = 0, brackets = 0;
  for (char ch : content) {
    braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, JsonlHasOneObjectPerEvent) {
  { TASFAR_TRACE_SPAN("line_one"); }
  { TASFAR_TRACE_SPAN("line_two"); }
  const std::string path = ::testing::TempDir() + "/tasfar_trace.jsonl";
  ASSERT_TRUE(WriteTraceJsonl(path));
  const std::string content = ReadFile(path);
  std::remove(path.c_str());
  std::istringstream lines(content);
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
  { TASFAR_TRACE_SPAN("cleared"); }
  ASSERT_FALSE(SnapshotTraceEvents().empty());
  ClearTraceEvents();
  EXPECT_TRUE(SnapshotTraceEvents().empty());
}

}  // namespace
}  // namespace tasfar::obs
