#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace tasfar::obs {
namespace {

/// Enables metrics for one test and restores the previous state (plus a
/// registry reset) afterwards, so tests cannot leak values into each other.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
    Registry::Get().ResetAllForTest();
  }
  void TearDown() override {
    Registry::Get().ResetAllForTest();
    SetMetricsEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(MetricsTest, CounterIncrements) {
  Counter* c = Registry::Get().GetCounter("test.counter.basic");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge* g = Registry::Get().GetGauge("test.gauge.basic");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->value(), -2.25);
}

TEST_F(MetricsTest, RegistryReturnsSameHandleForSameName) {
  Counter* a = Registry::Get().GetCounter("test.counter.identity");
  Counter* b = Registry::Get().GetCounter("test.counter.identity");
  EXPECT_EQ(a, b);
  Histogram* ha = Registry::Get().GetHistogram(
      "test.hist.identity", Histogram::LinearEdges(0.0, 1.0, 4));
  Histogram* hb = Registry::Get().GetHistogram(
      "test.hist.identity", Histogram::LinearEdges(0.0, 1.0, 4));
  EXPECT_EQ(ha, hb);
}

TEST_F(MetricsTest, DisabledMutationsAreNoOps) {
  Counter* c = Registry::Get().GetCounter("test.counter.disabled");
  Gauge* g = Registry::Get().GetGauge("test.gauge.disabled");
  Histogram* h = Registry::Get().GetHistogram(
      "test.hist.disabled", Histogram::LinearEdges(0.0, 1.0, 4));
  SetMetricsEnabled(false);
  c->Increment(7);
  g->Set(3.0);
  h->Observe(0.5);
  SetMetricsEnabled(true);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
}

TEST_F(MetricsTest, HistogramCountsAndClampsOutliers) {
  Histogram* h = Registry::Get().GetHistogram(
      "test.hist.clamp", Histogram::LinearEdges(0.0, 10.0, 10));
  h->Observe(-5.0);   // Below the range: boundary bucket.
  h->Observe(0.5);
  h->Observe(9.5);
  h->Observe(100.0);  // Above the range: boundary bucket.
  EXPECT_EQ(h->count(), 4u);
  std::vector<uint64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 10u);
  EXPECT_EQ(buckets.front(), 2u);
  EXPECT_EQ(buckets.back(), 2u);
}

TEST_F(MetricsTest, HistogramEdgeBuilders) {
  std::vector<double> lin = Histogram::LinearEdges(0.0, 1.0, 4);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[4], 1.0);
  std::vector<double> expo = Histogram::ExponentialEdges(1.0, 2.0, 3);
  ASSERT_EQ(expo.size(), 4u);
  EXPECT_DOUBLE_EQ(expo[3], 8.0);
  for (const std::vector<double>& edges :
       {lin, expo, Histogram::LatencyEdgesMs()}) {
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  }
}

TEST_F(MetricsTest, QuantileIsNanWhenEmpty) {
  Histogram* h = Registry::Get().GetHistogram(
      "test.hist.empty", Histogram::LinearEdges(0.0, 1.0, 4));
  EXPECT_TRUE(std::isnan(h->Quantile(0.5)));
}

TEST_F(MetricsTest, QuantileMatchesExactSortWithinBucketWidth) {
  // ISSUE acceptance: histogram quantile estimates vs an exact sort on
  // random data must agree to within the bucket width.
  const double lo = 0.0, hi = 100.0;
  const size_t num_buckets = 200;
  const double bucket_width = (hi - lo) / static_cast<double>(num_buckets);
  Histogram* h = Registry::Get().GetHistogram(
      "test.hist.quantile", Histogram::LinearEdges(lo, hi, num_buckets));
  Rng rng(1234);
  std::vector<double> values;
  values.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) {
    // Mix of uniform and clustered mass to exercise uneven buckets.
    const double v = i % 3 == 0 ? rng.Uniform(0.0, 100.0)
                                : rng.Normal(40.0, 10.0);
    const double clamped = std::clamp(v, lo, hi);
    values.push_back(clamped);
    h->Observe(clamped);
  }
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = stats::Quantile(values, p);
    const double est = h->Quantile(p);
    EXPECT_NEAR(est, exact, bucket_width)
        << "p=" << p << " exact=" << exact << " est=" << est;
  }
}

TEST_F(MetricsTest, ConcurrentHammeringFromParallelForIsExact) {
  // ISSUE acceptance: concurrent counter/histogram updates from the PR-2
  // pool at 8 threads must lose nothing (runs under TSan in CI).
  const size_t prev_threads = GetNumThreads();
  SetNumThreads(8);
  Counter* c = Registry::Get().GetCounter("test.counter.hammer");
  Histogram* h = Registry::Get().GetHistogram(
      "test.hist.hammer", Histogram::LinearEdges(0.0, 1.0, 16));
  const size_t n = 100000;
  ParallelFor(0, n, /*grain=*/64, [&](size_t i) {
    c->Increment();
    h->Observe(static_cast<double>(i % 16) / 16.0 + 1e-3);
  });
  EXPECT_EQ(c->value(), n);
  EXPECT_EQ(h->count(), n);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
  SetNumThreads(prev_threads);
}

TEST_F(MetricsTest, ToJsonContainsRegisteredMetrics) {
  Registry::Get().GetCounter("test.json.counter")->Increment(3);
  Registry::Get().GetGauge("test.json.gauge")->Set(2.5);
  Histogram* h = Registry::Get().GetHistogram(
      "test.json.hist", Histogram::LinearEdges(0.0, 1.0, 4));
  h->Observe(0.4);
  const std::string json = Registry::Get().ToJson();
  EXPECT_NE(json.find("\"test.json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(MetricsTest, WriteMetricsSnapshotProducesTaskFile) {
  Registry::Get().GetCounter("test.snapshot.counter")->Increment();
  const std::string dir = ::testing::TempDir() + "/tasfar_obs_metrics";
  ASSERT_TRUE(WriteMetricsSnapshot("unit", dir));
  std::ifstream in(dir + "/metrics_unit.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("\"task\": \"unit\""), std::string::npos);
  EXPECT_NE(content.find("test.snapshot.counter"), std::string::npos);
  std::remove((dir + "/metrics_unit.json").c_str());
}

TEST_F(MetricsTest, ResetClearsValuesButKeepsRegistration) {
  Counter* c = Registry::Get().GetCounter("test.reset.counter");
  c->Increment(9);
  Registry::Get().ResetAllForTest();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(Registry::Get().GetCounter("test.reset.counter"), c);
}

}  // namespace
}  // namespace tasfar::obs
