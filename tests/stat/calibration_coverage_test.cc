// Statistical tier (ISSUE 4): the QS calibration's σ = Q_s(u) must be
// *calibrated* — on held-out data from the same domain, the fraction of
// samples whose true error falls inside ±1·σ(u) (resp. ±2·σ) should match
// the Gaussian nominal coverage the pseudo-label generator assumes when it
// turns Q_s into per-instance label distributions (Eq. 6-9).
//
// Methodology: split the housing simulator's source region 50/25/25 into
// train / calibration / holdout (same domain throughout — QS calibration
// is a source-side procedure and only claims in-domain coverage). Fit QS
// on the calibration split's (uncertainty, signed error) pairs via
// Tasfar::Calibrate, then measure empirical coverage on the holdout.
//
// Tolerances: nominal 1σ coverage is 0.683 and 2σ is 0.954. With n ≈ 150
// holdout samples the binomial standard error is ≈ 0.038, and Q_s is a
// 40-segment linear fit, not a perfect conditional std, so we allow
// ±0.12 around the 1σ nominal and require ≥ 0.85 at 2σ. Every seed is
// fixed (simulator 6, weights 13, split 17, MC-dropout default), so the
// observed coverages are deterministic — 0.673 at 1σ and 0.933 at 2σ on
// this configuration; the margins exist for platform floating-point
// drift, not sampling noise.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/tasfar.h"
#include "data/housing_sim.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/simd/dispatch.h"
#include "uncertainty/estimator.h"

namespace tasfar {
namespace {

/// Fraction of holdout samples with |error| <= z * Q_s(uncertainty).
double EmpiricalCoverage(const std::vector<McPrediction>& preds,
                        const Tensor& targets, const QsModel& qs, double z) {
  size_t covered = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    const double err = std::fabs(preds[i].mean[0] - targets.At(i, 0));
    if (err <= z * qs.Sigma(preds[i].std[0])) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(preds.size());
}

struct CoverageResult {
  double cov1 = 0.0;  ///< Empirical ±1σ coverage on the holdout.
  double cov2 = 0.0;  ///< Empirical ±2σ coverage on the holdout.
};

/// Runs the full fixture (train / calibrate / holdout-predict) with the
/// given uncertainty backend, under whatever compute mode is currently
/// configured.
CoverageResult MeasureCoverage(
    UncertaintyBackend backend = UncertaintyBackend::kMcDropout) {
  HousingSimConfig cfg;
  cfg.source_samples = 600;
  cfg.target_samples = 10;  // Unused; source-side property.
  HousingSimulator sim(cfg, /*seed=*/6);
  Dataset source = sim.GenerateSource();
  Normalizer norm;
  norm.Fit(source.inputs);
  source.inputs = norm.Apply(source.inputs);

  Rng split_rng(17);
  SplitResult head = SplitFraction(source, 0.5, /*shuffle=*/true, &split_rng);
  SplitResult tail =
      SplitFraction(head.second, 0.5, /*shuffle=*/true, &split_rng);
  const Dataset& train = head.first;
  const Dataset& calib_split = tail.first;
  const Dataset& holdout = tail.second;

  Rng rng(13);
  auto model = BuildTabularModel(kNumHousingFeatures, &rng);
  Adam opt(1e-3);
  Trainer trainer(model.get(), &opt,
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 25;
  tc.batch_size = 32;
  trainer.Fit(train.inputs, train.targets, tc, &rng);

  TasfarOptions options;
  options.mc_samples = 20;
  options.uncertainty_backend = backend;
  Tasfar tasfar(options);
  const SourceCalibration calibration =
      tasfar.Calibrate(model.get(), calib_split.inputs, calib_split.targets);
  EXPECT_EQ(calibration.qs_per_dim.size(), 1u);
  const QsModel& qs = calibration.qs_per_dim[0];

  // Same backend and hyperparameters Calibrate just used, so the holdout
  // uncertainties live on the scale Q_s was fit to.
  std::unique_ptr<UncertaintyEstimator> predictor =
      MakeEstimator(model.get(), EstimatorConfigFromOptions(options));
  const std::vector<McPrediction> preds = predictor->Predict(holdout.inputs);
  EXPECT_GE(preds.size(), 100u);

  return {EmpiricalCoverage(preds, holdout.targets, qs, 1.0),
          EmpiricalCoverage(preds, holdout.targets, qs, 2.0)};
}

TEST(CalibrationCoverageTest, QsCoverageMatchesGaussianNominal) {
  const CoverageResult cov = MeasureCoverage();
  EXPECT_NEAR(cov.cov1, 0.683, 0.12)
      << "1-sigma coverage drifted from the Gaussian nominal";
  EXPECT_GE(cov.cov2, 0.85)
      << "2-sigma coverage collapsed - Q_s underestimates error spread";
  EXPECT_LE(cov.cov2, 1.0);
  // Coverage must be monotone in z by construction.
  EXPECT_GE(cov.cov2, cov.cov1);
}

// Per-backend reruns (ISSUE 10): Q_s is fit to whatever uncertainty the
// configured backend emits, so calibrated coverage must hold for every
// backend — the absolute uncertainty scale (dropout std, member
// disagreement, Laplace posterior std) is exactly what the fit absorbs.
// Same fixture and seeds; measured on this configuration: ensemble
// 1σ/2σ = 0.687/0.960 and laplace 1σ/2σ = 0.653/0.940 — both inside the
// MC-dropout tier's bands, which therefore carry over unchanged with the
// same platform-drift reasoning.
TEST(CalibrationCoverageTest, EnsembleQsCoverageMatchesGaussianNominal) {
  const CoverageResult cov =
      MeasureCoverage(UncertaintyBackend::kDeepEnsemble);
  EXPECT_NEAR(cov.cov1, 0.683, 0.12)
      << "ensemble 1-sigma coverage drifted from the Gaussian nominal";
  EXPECT_GE(cov.cov2, 0.85)
      << "ensemble 2-sigma coverage collapsed - Q_s underestimates spread";
  EXPECT_LE(cov.cov2, 1.0);
  EXPECT_GE(cov.cov2, cov.cov1);
}

TEST(CalibrationCoverageTest, LaplaceQsCoverageMatchesGaussianNominal) {
  const CoverageResult cov =
      MeasureCoverage(UncertaintyBackend::kLastLayerLaplace);
  EXPECT_NEAR(cov.cov1, 0.683, 0.12)
      << "laplace 1-sigma coverage drifted from the Gaussian nominal";
  EXPECT_GE(cov.cov2, 0.85)
      << "laplace 2-sigma coverage collapsed - Q_s underestimates spread";
  EXPECT_LE(cov.cov2, 1.0);
  EXPECT_GE(cov.cov2, cov.cov1);
}

// Float32 rerun (ISSUE 9): coverage is a counting statistic over
// |error| <= z * Q_s(u) comparisons, so float rounding can only flip
// samples sitting exactly on a coverage boundary. Measured on this
// fixture the f32 and double coverages are identical to three decimals;
// the per-sample delta margin below (±2 samples out of ~150, ≈ 0.014)
// is headroom for platform drift, and the absolute bands are the same
// as the double tier's.
TEST(CalibrationCoverageTest, QsCoverageSurvivesF32ComputeMode) {
  const CoverageResult f64 = MeasureCoverage();
  simd::ScopedKernelConfig guard;
  simd::SetComputeMode(simd::ComputeMode::kF32);
  const CoverageResult f32 = MeasureCoverage();
  EXPECT_NEAR(f32.cov1, 0.683, 0.12)
      << "f32 1-sigma coverage drifted from the Gaussian nominal";
  EXPECT_GE(f32.cov2, 0.85)
      << "f32 2-sigma coverage collapsed under the float path";
  EXPECT_GE(f32.cov2, f32.cov1);
  EXPECT_NEAR(f32.cov1, f64.cov1, 0.015);
  EXPECT_NEAR(f32.cov2, f64.cov2, 0.015);
}

}  // namespace
}  // namespace tasfar
