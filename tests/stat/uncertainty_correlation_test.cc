// Statistical tier (ISSUE 4): MC-dropout uncertainty must rank-correlate
// with true prediction error on a held-out simulator split. This is the
// property TASFAR's confidence split rests on — if uncertainty were
// uninformative about error, τ-thresholding would partition noise.
//
// Methodology: train the tabular MLP on the housing simulator's source
// region, then predict the *target* (coastal) region with MC dropout. The
// target mixes in-support rows with anomalous/coastal rows the source
// never saw, so both error and uncertainty have real spread. We assert
// Spearman ρ(uncertainty, |error|) — rank correlation, because the
// claim is monotone association, not linearity.
//
// Everything is seeded (simulator 5, weights 9, dropout streams from the
// predictor's fixed default seed), so the observed ρ is a deterministic
// number, not a flaky sample: ρ ≈ 0.347 on this configuration. The
// threshold below (ρ > 0.25) sits well under that to leave margin for
// platform-dependent floating-point differences, while still far above
// what an uninformative uncertainty could produce (|ρ| ≲ 0.1 at n = 300).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/housing_sim.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/simd/dispatch.h"
#include "uncertainty/estimator.h"
#include "util/stats.h"

namespace tasfar {
namespace {

/// Runs the full fixture (train on source, predict the target with the
/// given uncertainty backend) under whatever compute mode is currently
/// configured and returns Spearman ρ(uncertainty, |error|).
double MeasureSpearmanRho(EstimatorConfig config = EstimatorConfig{}) {
  HousingSimConfig cfg;
  cfg.source_samples = 600;
  cfg.target_samples = 300;
  HousingSimulator sim(cfg, /*seed=*/5);
  Dataset source = sim.GenerateSource();
  Dataset target = sim.GenerateTarget();
  Normalizer norm;
  norm.Fit(source.inputs);

  Rng rng(9);
  auto model = BuildTabularModel(kNumHousingFeatures, &rng);
  Adam opt(1e-3);
  Trainer trainer(model.get(), &opt,
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 20;
  tc.batch_size = 32;
  trainer.Fit(norm.Apply(source.inputs), source.targets, tc, &rng);

  // The default config matches the pre-seam McDropoutPredictor byte for
  // byte, so the MC-dropout tiers' measured numbers are unchanged.
  std::unique_ptr<UncertaintyEstimator> predictor =
      MakeEstimator(model.get(), config);
  const std::vector<McPrediction> preds =
      predictor->Predict(norm.Apply(target.inputs));
  EXPECT_EQ(preds.size(), target.size());

  std::vector<double> uncertainty, abs_error;
  uncertainty.reserve(preds.size());
  abs_error.reserve(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    uncertainty.push_back(preds[i].ScalarUncertainty());
    abs_error.push_back(
        std::fabs(preds[i].mean[0] - target.targets.At(i, 0)));
  }
  return stats::SpearmanCorrelation(uncertainty, abs_error);
}

TEST(UncertaintyCorrelationTest, McDropoutUncertaintyTracksTrueError) {
  const double rho = MeasureSpearmanRho();
  EXPECT_GT(rho, 0.25) << "MC-dropout uncertainty no longer ranks with "
                          "true error on the held-out target split";
  // Sanity: the statistic is a genuine correlation, not a degenerate 1.0
  // from constant vectors.
  EXPECT_LT(rho, 0.999);
}

// Per-backend reruns (ISSUE 10): the confidence split's ranking property
// must hold for every pluggable backend, not just the paper's MC dropout.
// Same fixture, same seeds — only the estimator changes, so each observed
// ρ is a deterministic number. Measured on this configuration: ensemble
// ρ ≈ 0.345 at 20 members (5-member disagreement is a much noisier std
// estimate, ρ ≈ 0.196, so the test pins the member count to match MC
// dropout's 20 passes) and laplace ρ ≈ 0.445 (the closed-form posterior
// needs no sampling at all, hence the cleanest ranking). Floors leave the
// same kind of platform-drift margin as the MC-dropout tier's, and sit
// far above the |ρ| ≲ 0.1 an uninformative signal could reach at n = 300.
TEST(UncertaintyCorrelationTest, EnsembleUncertaintyTracksTrueError) {
  EstimatorConfig config;
  config.backend = UncertaintyBackend::kDeepEnsemble;
  config.ensemble_members = 20;
  const double rho = MeasureSpearmanRho(config);
  EXPECT_GT(rho, 0.25) << "source-ensemble disagreement no longer ranks "
                          "with true error on the held-out target split";
  EXPECT_LT(rho, 0.999);
}

TEST(UncertaintyCorrelationTest, LaplaceUncertaintyTracksTrueError) {
  EstimatorConfig config;
  config.backend = UncertaintyBackend::kLastLayerLaplace;
  const double rho = MeasureSpearmanRho(config);
  EXPECT_GT(rho, 0.30) << "last-layer-Laplace variance no longer ranks "
                          "with true error on the held-out target split";
  EXPECT_LT(rho, 0.999);
}

// Float32 rerun (ISSUE 9): the rank correlation must survive the f32
// forward path — the stochastic passes consume the identical RNG stream,
// so the only perturbation is float rounding of means/stds, which can
// swap ranks only between near-tied samples. Measured on this fixture:
// |ρ_f32 - ρ| = 0 to three decimals (both ≈ 0.347); the margin below is
// platform headroom, and the absolute floor is the same as the double
// tier's so an f32-only regression cannot hide behind the delta check.
TEST(UncertaintyCorrelationTest, SpearmanRhoSurvivesF32ComputeMode) {
  const double rho_f64 = MeasureSpearmanRho();
  simd::ScopedKernelConfig guard;
  simd::SetComputeMode(simd::ComputeMode::kF32);
  const double rho_f32 = MeasureSpearmanRho();
  EXPECT_GT(rho_f32, 0.25) << "f32 forward path degraded the uncertainty "
                              "ranking below the statistical floor";
  EXPECT_LT(rho_f32, 0.999);
  EXPECT_NEAR(rho_f32, rho_f64, 0.02)
      << "f32 vs double Spearman rho drifted past the documented margin";
}

}  // namespace
}  // namespace tasfar
