// Edge cases of the dataset utilities: boundary fractions, singleton
// datasets, empty subsets — failure surfaces that matter because every
// harness splits data before anything else runs.

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace tasfar {
namespace {

Dataset Make(size_t n) {
  Dataset ds;
  ds.inputs = Tensor({n, 2});
  ds.targets = Tensor({n, 1});
  for (size_t i = 0; i < n; ++i) {
    ds.inputs.At(i, 0) = static_cast<double>(i);
    ds.targets.At(i, 0) = static_cast<double>(i);
  }
  return ds;
}

TEST(DatasetEdgeTest, SplitFractionZeroPutsEverythingSecond) {
  Rng rng(1);
  SplitResult split = SplitFraction(Make(5), 0.0, true, &rng);
  EXPECT_EQ(split.first.size(), 0u);
  EXPECT_EQ(split.second.size(), 5u);
}

TEST(DatasetEdgeTest, SplitFractionOnePutsEverythingFirst) {
  Rng rng(2);
  SplitResult split = SplitFraction(Make(5), 1.0, true, &rng);
  EXPECT_EQ(split.first.size(), 5u);
  EXPECT_EQ(split.second.size(), 0u);
}

TEST(DatasetEdgeTest, SplitSingletonDataset) {
  Rng rng(3);
  SplitResult split = SplitFraction(Make(1), 0.5, true, &rng);
  EXPECT_EQ(split.first.size() + split.second.size(), 1u);
}

TEST(DatasetEdgeTest, EmptySubsetHasZeroRows) {
  Dataset sub = Subset(Make(4), {});
  EXPECT_EQ(sub.size(), 0u);
  EXPECT_EQ(sub.inputs.dim(1), 2u);  // Trailing shape preserved.
}

TEST(DatasetEdgeTest, SubsetWithRepeats) {
  Dataset sub = Subset(Make(3), {2, 2, 0});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.inputs.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.inputs.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.inputs.At(2, 0), 0.0);
}

TEST(DatasetEdgeTest, ConcatSingleDatasetIsIdentity) {
  Dataset a = Make(3);
  Dataset c = Concat({a});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.inputs.MaxAbsDiff(a.inputs), 0.0);
}

TEST(DatasetEdgeTest, FilterByMissingGroupIsEmpty) {
  Dataset ds = Make(3);
  ds.group_ids = {1, 1, 2};
  Dataset none = FilterByGroup(ds, 99);
  EXPECT_EQ(none.size(), 0u);
}

TEST(DatasetEdgeTest, DistinctGroupsOnUntaggedDatasetIsEmpty) {
  EXPECT_TRUE(DistinctGroups(Make(3)).empty());
}

TEST(DatasetEdgeTest, NormalizerSingleRow) {
  Normalizer norm;
  Tensor x({1, 3}, {1.0, 2.0, 3.0});
  norm.Fit(x);  // Zero variance everywhere -> std defaults to 1.
  Tensor z = norm.Apply(x);
  EXPECT_DOUBLE_EQ(z.SquaredNorm(), 0.0);
}

TEST(DatasetEdgeTest, NormalizerRoundTripRecoversValues) {
  Normalizer norm;
  Rng rng(7);
  Tensor x = Tensor::RandomNormal({20, 3}, &rng, 5.0, 2.0);
  norm.Fit(x);
  Tensor z = norm.Apply(x);
  // Invert manually.
  Tensor back = z;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      back.At(i, j) = z.At(i, j) * norm.std()[j] + norm.mean()[j];
    }
  }
  EXPECT_NEAR(back.MaxAbsDiff(x), 0.0, 1e-12);
}

}  // namespace
}  // namespace tasfar
