#include "data/crowd_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "nn/sequential.h"
#include "nn/trainer.h"
#include "util/stats.h"

namespace tasfar {
namespace {

CrowdSimConfig TinyConfig() {
  CrowdSimConfig cfg;
  cfg.image_size = 16;
  cfg.part_a_images = 40;
  cfg.part_b_images = 60;
  cfg.num_scenes_b = 3;
  return cfg;
}

TEST(CrowdSimTest, PartShapes) {
  CrowdSimulator sim(TinyConfig(), 5);
  Dataset a = sim.GeneratePartA();
  Dataset b = sim.GeneratePartB();
  a.Validate();
  b.Validate();
  EXPECT_EQ(a.size(), 40u);
  EXPECT_EQ(b.size(), 60u);
  EXPECT_EQ(a.inputs.rank(), 4u);
  EXPECT_EQ(a.inputs.dim(1), 1u);
  EXPECT_EQ(a.inputs.dim(2), 16u);
  EXPECT_EQ(b.label_dim(), 1u);
}

TEST(CrowdSimTest, Deterministic) {
  CrowdSimulator s1(TinyConfig(), 5);
  CrowdSimulator s2(TinyConfig(), 5);
  EXPECT_DOUBLE_EQ(
      s1.GeneratePartB().inputs.MaxAbsDiff(s2.GeneratePartB().inputs), 0.0);
}

TEST(CrowdSimTest, PartBHasThreeScenes) {
  CrowdSimulator sim(TinyConfig(), 7);
  Dataset b = sim.GeneratePartB();
  std::vector<int> groups = DistinctGroups(b);
  EXPECT_EQ(groups.size(), 3u);
  for (int g : groups) {
    EXPECT_GE(FilterByGroup(b, g).size(), 15u);
  }
}

TEST(CrowdSimTest, SceneCountLevelsDiffer) {
  CrowdSimulator sim(TinyConfig(), 9);
  Dataset b = sim.GeneratePartB();
  std::vector<double> means;
  for (int g : DistinctGroups(b)) {
    Dataset scene = FilterByGroup(b, g);
    std::vector<double> counts;
    for (size_t i = 0; i < scene.size(); ++i) {
      counts.push_back(scene.targets.At(i, 0));
    }
    means.push_back(stats::Mean(counts));
  }
  std::sort(means.begin(), means.end());
  // Sparse / medium / crowded sites have clearly separated levels.
  EXPECT_GT(means[1], means[0] * 1.3);
  EXPECT_GT(means[2], means[1] * 1.3);
}

TEST(CrowdSimTest, CrowdedSceneHasTighterRelativeSpread) {
  // Scene 3 of the paper keeps a stable pedestrian stream: its coefficient
  // of variation is smaller than the sparse scene's.
  CrowdSimConfig cfg = TinyConfig();
  cfg.part_b_images = 300;
  CrowdSimulator sim(cfg, 11);
  Dataset b = sim.GeneratePartB();
  auto cv_of = [&](int g) {
    Dataset scene = FilterByGroup(b, g);
    std::vector<double> counts;
    for (size_t i = 0; i < scene.size(); ++i) {
      counts.push_back(scene.targets.At(i, 0));
    }
    return stats::StdDev(counts) / stats::Mean(counts);
  };
  EXPECT_LT(cv_of(2), cv_of(0));
}

TEST(CrowdSimTest, ImageIntensityTracksCount) {
  CrowdSimulator sim(TinyConfig(), 13);
  CrowdSceneProfile scene = sim.part_b_scenes()[1];
  scene.glare_prob = 0.0;  // Isolate the count signal.
  Rng rng(17);
  Tensor sparse = sim.RenderImage(scene, 5, &rng);
  Tensor dense = sim.RenderImage(scene, 80, &rng);
  EXPECT_GT(dense.Sum(), sparse.Sum());
}

TEST(CrowdSimTest, ZeroCountImageIsBackgroundOnly) {
  CrowdSimulator sim(TinyConfig(), 17);
  CrowdSceneProfile scene = sim.part_b_scenes()[0];
  scene.glare_prob = 0.0;  // Isolate the background.
  Rng rng(19);
  Tensor img = sim.RenderImage(scene, 0, &rng);
  // Background is darkish with clutter noise; nothing bright.
  EXPECT_LT(img.Max(), 0.5);
}

TEST(CrowdSimTest, PartBHasGlareArtifacts) {
  CrowdSimulator sim(TinyConfig(), 19);
  Dataset a = sim.GeneratePartA();
  Dataset b = sim.GeneratePartB();
  // Appearance gap: Part B's street footage is frequently contaminated by
  // bright lens glare; curated Part A rarely is. Count the images whose
  // peak intensity exceeds what person blobs alone produce.
  auto glare_fraction = [](const Dataset& ds) {
    size_t glared = 0;
    const size_t per_image = ds.inputs.size() / ds.size();
    for (size_t i = 0; i < ds.size(); ++i) {
      double peak = 0.0;
      for (size_t k = 0; k < per_image; ++k) {
        peak = std::max(peak, ds.inputs[i * per_image + k]);
      }
      glared += (peak > 2.5) ? 1 : 0;
    }
    return static_cast<double>(glared) / static_cast<double>(ds.size());
  };
  EXPECT_GT(glare_fraction(b), glare_fraction(a) + 0.1);
}

TEST(CrowdSimTest, CountsNonNegative) {
  CrowdSimulator sim(TinyConfig(), 23);
  Dataset b = sim.GeneratePartB();
  EXPECT_GE(b.targets.Min(), 0.0);
}

TEST(BuildCrowdModelTest, OutputShapeAndParamSharing) {
  Rng rng(29);
  auto model = BuildCrowdModel(16, &rng);
  Tensor x = Tensor::RandomNormal({2, 1, 16, 16}, &rng);
  Tensor y = model->Forward(x, false);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 1u);
  EXPECT_GT(model->ParameterCount(), 100u);
}

}  // namespace
}  // namespace tasfar
