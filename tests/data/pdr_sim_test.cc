#include "data/pdr_sim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/sequential.h"
#include "util/stats.h"

namespace tasfar {
namespace {

PdrSimConfig TinyConfig() {
  PdrSimConfig cfg;
  cfg.num_seen_users = 3;
  cfg.num_unseen_users = 2;
  cfg.source_steps_per_user = 30;
  cfg.target_trajectories_seen = 4;
  cfg.target_trajectories_unseen = 5;
  cfg.steps_per_trajectory = 15;
  return cfg;
}

TEST(PdrSimTest, SourceDatasetShape) {
  PdrSimulator sim(TinyConfig(), 42);
  Dataset src = sim.GenerateSourceDataset();
  src.Validate();
  EXPECT_EQ(src.size(), 3u * 30);
  EXPECT_EQ(src.inputs.rank(), 3u);
  EXPECT_EQ(src.inputs.dim(1), 6u);
  EXPECT_EQ(src.inputs.dim(2), 20u);
  EXPECT_EQ(src.label_dim(), 2u);
}

TEST(PdrSimTest, Deterministic) {
  PdrSimulator a(TinyConfig(), 42);
  PdrSimulator b(TinyConfig(), 42);
  Dataset da = a.GenerateSourceDataset();
  Dataset db = b.GenerateSourceDataset();
  EXPECT_DOUBLE_EQ(da.inputs.MaxAbsDiff(db.inputs), 0.0);
  EXPECT_DOUBLE_EQ(da.targets.MaxAbsDiff(db.targets), 0.0);
}

TEST(PdrSimTest, DifferentSeedsDiffer) {
  PdrSimulator a(TinyConfig(), 1);
  PdrSimulator b(TinyConfig(), 2);
  EXPECT_GT(a.GenerateSourceDataset().inputs.MaxAbsDiff(
                b.GenerateSourceDataset().inputs),
            0.0);
}

TEST(PdrSimTest, TargetUserCountsAndGroups) {
  PdrSimulator sim(TinyConfig(), 7);
  auto users = sim.GenerateTargetUsers();
  ASSERT_EQ(users.size(), 5u);
  size_t seen = 0, unseen = 0;
  for (const auto& u : users) {
    (u.profile.seen ? seen : unseen) += 1;
    EXPECT_FALSE(u.adaptation.empty());
    EXPECT_FALSE(u.test.empty());
  }
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(unseen, 2u);
}

TEST(PdrSimTest, AdaptationFractionRoughly80Percent) {
  PdrSimConfig cfg = TinyConfig();
  cfg.target_trajectories_seen = 10;
  PdrSimulator sim(cfg, 7);
  auto users = sim.GenerateTargetUsers();
  EXPECT_EQ(users[0].adaptation.size(), 8u);
  EXPECT_EQ(users[0].test.size(), 2u);
}

TEST(PdrSimTest, StepLengthsMatchProfile) {
  PdrSimulator sim(TinyConfig(), 11);
  PdrUserProfile p;
  p.id = 0;
  p.stride_mean = 1.3;
  p.stride_std = 0.1;
  Rng rng(5);
  PdrTrajectory traj = sim.SimulateTrajectory(p, 400, &rng);
  std::vector<double> lengths;
  for (size_t i = 0; i < 400; ++i) {
    const double dx = traj.steps.targets.At(i, 0);
    const double dy = traj.steps.targets.At(i, 1);
    lengths.push_back(std::sqrt(dx * dx + dy * dy));
  }
  EXPECT_NEAR(stats::Mean(lengths), 1.3, 0.05);
  EXPECT_NEAR(stats::StdDev(lengths), 0.1, 0.05);
}

TEST(PdrSimTest, LabelsFormARing) {
  // All displacement magnitudes concentrate near the stride mean while
  // headings spread — the ring-shaped density of Fig. 2/6.
  PdrSimulator sim(TinyConfig(), 13);
  PdrUserProfile p;
  p.stride_mean = 1.0;
  p.stride_std = 0.05;
  p.turn_std = 0.5;  // Headings wander quickly.
  Rng rng(17);
  PdrTrajectory traj = sim.SimulateTrajectory(p, 600, &rng);
  size_t quadrant[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < 600; ++i) {
    const double dx = traj.steps.targets.At(i, 0);
    const double dy = traj.steps.targets.At(i, 1);
    quadrant[(dx >= 0 ? 0 : 1) + (dy >= 0 ? 0 : 2)] += 1;
  }
  // The walk covers all heading quadrants.
  for (size_t q = 0; q < 4; ++q) EXPECT_GT(quadrant[q], 30u);
}

TEST(PdrSimTest, SignalEncodesHeading) {
  // Channels 4/5 carry cos/sin of the heading (plus noise/gain), so they
  // must correlate with the normalized displacement direction.
  PdrSimulator sim(TinyConfig(), 19);
  PdrUserProfile p;  // Default gains = 1, small noise.
  Rng rng(23);
  PdrTrajectory traj = sim.SimulateTrajectory(p, 100, &rng);
  std::vector<double> ch4, cos_heading;
  for (size_t i = 0; i < 100; ++i) {
    double mean_ch4 = 0.0;
    for (size_t t = 0; t < 20; ++t) mean_ch4 += traj.steps.inputs.At(i, 4, t);
    ch4.push_back(mean_ch4 / 20.0);
    const double dx = traj.steps.targets.At(i, 0);
    const double dy = traj.steps.targets.At(i, 1);
    cos_heading.push_back(dx / std::sqrt(dx * dx + dy * dy));
  }
  EXPECT_GT(stats::PearsonCorrelation(ch4, cos_heading), 0.9);
}

TEST(PdrSimTest, UnseenUsersHaveLargerDeviceDistortion) {
  PdrSimConfig cfg = TinyConfig();
  cfg.num_seen_users = 10;
  cfg.num_unseen_users = 10;
  PdrSimulator sim(cfg, 29);
  auto users = sim.GenerateTargetUsers();
  double seen_dev = 0.0, unseen_dev = 0.0;
  size_t ns = 0, nu = 0;
  for (const auto& u : users) {
    double dev = 0.0;
    for (size_t c = 0; c < 6; ++c) {
      dev += std::fabs(u.profile.channel_gain[c] - 1.0);
    }
    if (u.profile.seen) {
      seen_dev += dev;
      ++ns;
    } else {
      unseen_dev += dev;
      ++nu;
    }
  }
  EXPECT_GT(unseen_dev / static_cast<double>(nu),
            seen_dev / static_cast<double>(ns));
}

TEST(PdrSimTest, AllSignalsFinite) {
  PdrSimulator sim(TinyConfig(), 31);
  Dataset src = sim.GenerateSourceDataset();
  EXPECT_TRUE(src.inputs.AllFinite());
  EXPECT_TRUE(src.targets.AllFinite());
}

TEST(BuildPdrModelTest, OutputShapeAndDropout) {
  Rng rng(37);
  auto model = BuildPdrModel(20, &rng);
  Tensor x = Tensor::RandomNormal({3, 6, 20}, &rng);
  Tensor y = model->Forward(x, false);
  EXPECT_EQ(y.dim(0), 3u);
  EXPECT_EQ(y.dim(1), 2u);
  // Stochastic under training=true (MC dropout requirement).
  Tensor y1 = model->Forward(x, true);
  Tensor y2 = model->Forward(x, true);
  EXPECT_GT(y1.MaxAbsDiff(y2), 0.0);
}

}  // namespace
}  // namespace tasfar
