// Property-style sweeps over the simulators: structural invariants that
// must hold for any configuration (shapes, determinism, group integrity,
// label sanity).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/crowd_sim.h"
#include "data/housing_sim.h"
#include "data/pdr_sim.h"
#include "data/taxi_sim.h"

namespace tasfar {
namespace {

// --- PDR -------------------------------------------------------------

using PdrParam = std::tuple<size_t /*window*/, size_t /*steps*/,
                            uint64_t /*seed*/>;

class PdrSimPropertyTest : public ::testing::TestWithParam<PdrParam> {
 protected:
  PdrSimConfig Config() const {
    PdrSimConfig cfg;
    cfg.num_seen_users = 2;
    cfg.num_unseen_users = 1;
    cfg.window_len = std::get<0>(GetParam());
    cfg.source_steps_per_user = 20;
    cfg.target_trajectories_seen = 3;
    cfg.target_trajectories_unseen = 3;
    cfg.steps_per_trajectory = std::get<1>(GetParam());
    return cfg;
  }
  uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(PdrSimPropertyTest, ShapesMatchConfig) {
  PdrSimulator sim(Config(), seed());
  Dataset src = sim.GenerateSourceDataset();
  EXPECT_EQ(src.inputs.dim(2), Config().window_len);
  for (const PdrUserData& user : sim.GenerateTargetUsers()) {
    for (const PdrTrajectory& traj : user.adaptation) {
      EXPECT_EQ(traj.steps.inputs.dim(0), Config().steps_per_trajectory);
      EXPECT_EQ(traj.steps.inputs.dim(2), Config().window_len);
      EXPECT_EQ(traj.steps.targets.dim(1), 2u);
    }
    EXPECT_FALSE(user.test.empty());
  }
}

TEST_P(PdrSimPropertyTest, StepLengthsArePositiveAndBounded) {
  PdrSimulator sim(Config(), seed());
  for (const PdrUserData& user : sim.GenerateTargetUsers()) {
    for (const PdrTrajectory& traj : user.adaptation) {
      for (size_t s = 0; s < traj.steps.size(); ++s) {
        const double dx = traj.steps.targets.At(s, 0);
        const double dy = traj.steps.targets.At(s, 1);
        const double len = std::sqrt(dx * dx + dy * dy);
        EXPECT_GT(len, 0.05);
        EXPECT_LT(len, 3.0);
      }
    }
  }
}

TEST_P(PdrSimPropertyTest, GroupTagsMatchUserIds) {
  PdrSimulator sim(Config(), seed());
  for (const PdrUserData& user : sim.GenerateTargetUsers()) {
    for (const PdrTrajectory& traj : user.adaptation) {
      for (int g : traj.steps.group_ids) {
        EXPECT_EQ(g, user.profile.id);
      }
    }
  }
}

TEST_P(PdrSimPropertyTest, RegenerationIsIdentical) {
  PdrSimulator a(Config(), seed());
  PdrSimulator b(Config(), seed());
  auto ua = a.GenerateTargetUsers();
  auto ub = b.GenerateTargetUsers();
  ASSERT_EQ(ua.size(), ub.size());
  for (size_t u = 0; u < ua.size(); ++u) {
    ASSERT_EQ(ua[u].adaptation.size(), ub[u].adaptation.size());
    EXPECT_DOUBLE_EQ(ua[u].adaptation[0].steps.inputs.MaxAbsDiff(
                         ub[u].adaptation[0].steps.inputs),
                     0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PdrSimPropertyTest,
    ::testing::Combine(::testing::Values(8u, 20u, 32u),
                       ::testing::Values(5u, 25u),
                       ::testing::Values(1u, 99u)),
    [](const auto& param_info) {
      return "w" + std::to_string(std::get<0>(param_info.param)) + "s" +
             std::to_string(std::get<1>(param_info.param)) + "seed" +
             std::to_string(std::get<2>(param_info.param));
    });

// --- Crowd -----------------------------------------------------------

class CrowdSimPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(CrowdSimPropertyTest, ImagesAreFiniteAndLabeled) {
  CrowdSimConfig cfg;
  cfg.image_size = std::get<0>(GetParam());
  cfg.part_a_images = 12;
  cfg.part_b_images = 15;
  CrowdSimulator sim(cfg, std::get<1>(GetParam()));
  for (const Dataset& part : {sim.GeneratePartA(), sim.GeneratePartB()}) {
    part.Validate();
    EXPECT_TRUE(part.inputs.AllFinite());
    EXPECT_GE(part.targets.Min(), 0.0);
    EXPECT_EQ(part.inputs.dim(2), cfg.image_size);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrowdSimPropertyTest,
                         ::testing::Combine(::testing::Values(8u, 16u, 24u),
                                            ::testing::Values(4u, 44u)),
                         [](const auto& param_info) {
                           return "s" +
                                  std::to_string(std::get<0>(param_info.param)) +
                                  "seed" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

// --- Tabular ----------------------------------------------------------

class TabularSimPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TabularSimPropertyTest, HousingRegionsDisjointAndFinite) {
  HousingSimConfig cfg;
  cfg.source_samples = 150;
  cfg.target_samples = 100;
  HousingSimulator sim(cfg, GetParam());
  Dataset src = sim.GenerateSource();
  Dataset tgt = sim.GenerateTarget();
  EXPECT_TRUE(src.inputs.AllFinite());
  EXPECT_TRUE(tgt.inputs.AllFinite());
  double src_min_cd = 1e9, tgt_max_cd = -1e9;
  for (size_t i = 0; i < src.size(); ++i) {
    src_min_cd = std::min(src_min_cd, src.inputs.At(i, kCoastDistance));
  }
  for (size_t i = 0; i < tgt.size(); ++i) {
    tgt_max_cd = std::max(tgt_max_cd, tgt.inputs.At(i, kCoastDistance));
  }
  EXPECT_GE(src_min_cd, tgt_max_cd);
}

TEST_P(TabularSimPropertyTest, TaxiDurationsPositiveEverywhere) {
  TaxiSimConfig cfg;
  cfg.source_samples = 150;
  cfg.target_samples = 100;
  TaxiSimulator sim(cfg, GetParam());
  for (const Dataset& part : {sim.GenerateSource(), sim.GenerateTarget()}) {
    part.Validate();
    EXPECT_GE(part.targets.Min(), 1.0);
    EXPECT_TRUE(part.inputs.AllFinite());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TabularSimPropertyTest,
                         ::testing::Values(1u, 7u, 1234u),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace tasfar
