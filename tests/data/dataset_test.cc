#include "data/dataset.h"

#include <gtest/gtest.h>

namespace tasfar {
namespace {

Dataset MakeTabular(size_t n) {
  Dataset ds;
  ds.inputs = Tensor({n, 2});
  ds.targets = Tensor({n, 1});
  for (size_t i = 0; i < n; ++i) {
    ds.inputs.At(i, 0) = static_cast<double>(i);
    ds.inputs.At(i, 1) = static_cast<double>(i) * 10.0;
    ds.targets.At(i, 0) = static_cast<double>(i) * 100.0;
    ds.group_ids.push_back(static_cast<int>(i % 3));
  }
  return ds;
}

TEST(DatasetTest, SizeAndLabelDim) {
  Dataset ds = MakeTabular(5);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.label_dim(), 1u);
  ds.Validate();
}

TEST(DatasetTest, EmptyDefaultHasSizeZero) {
  Dataset ds;
  EXPECT_EQ(ds.size(), 0u);
}

TEST(DatasetTest, SubsetSelectsRowsAndGroups) {
  Dataset ds = MakeTabular(6);
  Dataset sub = Subset(ds, {4, 1});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.inputs.At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.targets.At(1, 0), 100.0);
  EXPECT_EQ(sub.group_ids[0], 1);  // 4 % 3.
}

TEST(DatasetTest, ConcatStacksEverything) {
  Dataset a = MakeTabular(2);
  Dataset b = MakeTabular(3);
  Dataset c = Concat({a, b});
  EXPECT_EQ(c.size(), 5u);
  EXPECT_DOUBLE_EQ(c.inputs.At(2, 0), 0.0);  // First row of b.
  EXPECT_EQ(c.group_ids.size(), 5u);
}

TEST(DatasetTest, FilterByGroup) {
  Dataset ds = MakeTabular(9);
  Dataset g1 = FilterByGroup(ds, 1);
  EXPECT_EQ(g1.size(), 3u);
  for (int g : g1.group_ids) EXPECT_EQ(g, 1);
}

TEST(DatasetTest, DistinctGroupsInFirstAppearanceOrder) {
  Dataset ds = MakeTabular(9);
  std::vector<int> groups = DistinctGroups(ds);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], 0);
  EXPECT_EQ(groups[1], 1);
  EXPECT_EQ(groups[2], 2);
}

TEST(DatasetTest, SplitFractionCountsCorrect) {
  Dataset ds = MakeTabular(10);
  Rng rng(1);
  SplitResult split = SplitFraction(ds, 0.8, true, &rng);
  EXPECT_EQ(split.first.size(), 8u);
  EXPECT_EQ(split.second.size(), 2u);
}

TEST(DatasetTest, SplitWithoutShuffleKeepsOrder) {
  Dataset ds = MakeTabular(4);
  SplitResult split = SplitFraction(ds, 0.5, false, nullptr);
  EXPECT_DOUBLE_EQ(split.first.inputs.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(split.second.inputs.At(0, 0), 2.0);
}

TEST(DatasetTest, SplitShufflePartitionsAllRows) {
  Dataset ds = MakeTabular(20);
  Rng rng(2);
  SplitResult split = SplitFraction(ds, 0.7, true, &rng);
  std::vector<double> seen;
  for (size_t i = 0; i < split.first.size(); ++i) {
    seen.push_back(split.first.inputs.At(i, 0));
  }
  for (size_t i = 0; i < split.second.size(); ++i) {
    seen.push_back(split.second.inputs.At(i, 0));
  }
  std::sort(seen.begin(), seen.end());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(seen[i], static_cast<double>(i));
  }
}

TEST(NormalizerTest, TabularZScores) {
  Normalizer norm;
  Tensor x({4, 2}, {0.0, 10.0, 2.0, 20.0, 4.0, 30.0, 6.0, 40.0});
  norm.Fit(x);
  Tensor z = norm.Apply(x);
  // Each column has mean 0 std 1 after the transform.
  Tensor mean = z.ColMean();
  Tensor stdv = z.ColStd();
  EXPECT_NEAR(mean[0], 0.0, 1e-12);
  EXPECT_NEAR(mean[1], 0.0, 1e-12);
  EXPECT_NEAR(stdv[0], 1.0, 1e-12);
  EXPECT_NEAR(stdv[1], 1.0, 1e-12);
}

TEST(NormalizerTest, ConstantFeatureGetsUnitStd) {
  Normalizer norm;
  Tensor x({3, 1}, {5.0, 5.0, 5.0});
  norm.Fit(x);
  Tensor z = norm.Apply(x);
  EXPECT_DOUBLE_EQ(z.At(0, 0), 0.0);
  EXPECT_TRUE(z.AllFinite());
}

TEST(NormalizerTest, AppliesSourceStatsToTarget) {
  Normalizer norm;
  Tensor source({2, 1}, {0.0, 2.0});  // mean 1, std 1.
  norm.Fit(source);
  Tensor target({1, 1}, {3.0});
  EXPECT_DOUBLE_EQ(norm.Apply(target).At(0, 0), 2.0);
}

TEST(NormalizerTest, HigherRankUsesGlobalStats) {
  Normalizer norm;
  Tensor x({2, 1, 2, 2}, {0, 0, 0, 0, 2, 2, 2, 2});
  norm.Fit(x);
  Tensor z = norm.Apply(x);
  EXPECT_NEAR(z.Mean(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(z[0], -1.0);
  EXPECT_DOUBLE_EQ(z[7], 1.0);
}

TEST(NormalizerDeathTest, ApplyBeforeFitAborts) {
  Normalizer norm;
  EXPECT_DEATH(norm.Apply(Tensor({1, 1})), "before Fit");
}

TEST(DatasetDeathTest, ConcatShapeMismatchAborts) {
  Dataset a = MakeTabular(2);
  Dataset b;
  b.inputs = Tensor({2, 3});
  b.targets = Tensor({2, 1});
  b.group_ids = {0, 0};
  EXPECT_DEATH(Concat({a, b}), "");
}

}  // namespace
}  // namespace tasfar
