#include <gtest/gtest.h>

#include <cmath>

#include "data/housing_sim.h"
#include "data/taxi_sim.h"
#include "nn/sequential.h"
#include "util/stats.h"

namespace tasfar {
namespace {

std::vector<double> Column(const Dataset& ds, size_t col) {
  std::vector<double> out;
  out.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) out.push_back(ds.inputs.At(i, col));
  return out;
}

std::vector<double> Labels(const Dataset& ds) {
  std::vector<double> out;
  out.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) out.push_back(ds.targets.At(i, 0));
  return out;
}

// --- Housing ----------------------------------------------------------

HousingSimConfig TinyHousing() {
  HousingSimConfig cfg;
  cfg.source_samples = 500;
  cfg.target_samples = 300;
  return cfg;
}

TEST(HousingSimTest, ShapesAndDeterminism) {
  HousingSimulator sim(TinyHousing(), 3);
  Dataset src = sim.GenerateSource();
  Dataset tgt = sim.GenerateTarget();
  src.Validate();
  tgt.Validate();
  EXPECT_EQ(src.size(), 500u);
  EXPECT_EQ(tgt.size(), 300u);
  EXPECT_EQ(src.inputs.dim(1), static_cast<size_t>(kNumHousingFeatures));
  HousingSimulator sim2(TinyHousing(), 3);
  EXPECT_DOUBLE_EQ(src.inputs.MaxAbsDiff(sim2.GenerateSource().inputs), 0.0);
}

TEST(HousingSimTest, SpatialSplitRespected) {
  HousingSimulator sim(TinyHousing(), 5);
  Dataset src = sim.GenerateSource();
  Dataset tgt = sim.GenerateTarget();
  const double threshold = sim.config().coastal_threshold;
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_GE(src.inputs.At(i, kCoastDistance), threshold);
  }
  for (size_t i = 0; i < tgt.size(); ++i) {
    EXPECT_LT(tgt.inputs.At(i, kCoastDistance), threshold);
  }
}

TEST(HousingSimTest, CoastalPricesHigher) {
  HousingSimulator sim(TinyHousing(), 7);
  EXPECT_GT(stats::Mean(Labels(sim.GenerateTarget())),
            stats::Mean(Labels(sim.GenerateSource())) * 1.3);
}

TEST(HousingSimTest, IncomePredictsPriceWithinSource) {
  HousingSimulator sim(TinyHousing(), 9);
  Dataset src = sim.GenerateSource();
  EXPECT_GT(stats::PearsonCorrelation(Column(src, kMedianIncome),
                                      Labels(src)),
            0.5);
}

TEST(HousingSimTest, OceanViewRareInland) {
  HousingSimulator sim(TinyHousing(), 11);
  Dataset src = sim.GenerateSource();
  Dataset tgt = sim.GenerateTarget();
  EXPECT_LT(stats::Mean(Column(src, kOceanViewScore)), 0.1);
  // The coastal strip sees the ocean noticeably more often than inland.
  EXPECT_GT(stats::Mean(Column(tgt, kOceanViewScore)),
            1.5 * stats::Mean(Column(src, kOceanViewScore)));
}

TEST(HousingSimTest, PricesBoundedAndFinite) {
  HousingSimulator sim(TinyHousing(), 13);
  Dataset tgt = sim.GenerateTarget();
  EXPECT_TRUE(tgt.targets.AllFinite());
  EXPECT_GE(tgt.targets.Min(), 0.2);
  EXPECT_LE(tgt.targets.Max(), 12.0);
}

// --- Taxi -------------------------------------------------------------

TaxiSimConfig TinyTaxi() {
  TaxiSimConfig cfg;
  cfg.source_samples = 500;
  cfg.target_samples = 300;
  return cfg;
}

TEST(TaxiSimTest, ShapesAndDeterminism) {
  TaxiSimulator sim(TinyTaxi(), 3);
  Dataset src = sim.GenerateSource();
  Dataset tgt = sim.GenerateTarget();
  src.Validate();
  tgt.Validate();
  EXPECT_EQ(src.inputs.dim(1), static_cast<size_t>(kNumTaxiFeatures));
  TaxiSimulator sim2(TinyTaxi(), 3);
  EXPECT_DOUBLE_EQ(tgt.inputs.MaxAbsDiff(sim2.GenerateTarget().inputs), 0.0);
}

TEST(TaxiSimTest, ManhattanBoxRespected) {
  TaxiSimulator sim(TinyTaxi(), 5);
  Dataset tgt = sim.GenerateTarget();
  for (size_t i = 0; i < tgt.size(); ++i) {
    EXPECT_LT(tgt.inputs.At(i, kPickupX), 0.3);
    EXPECT_LT(tgt.inputs.At(i, kPickupY), 0.3);
  }
  Dataset src = sim.GenerateSource();
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_FALSE(src.inputs.At(i, kPickupX) < 0.3 &&
                 src.inputs.At(i, kPickupY) < 0.3);
  }
}

TEST(TaxiSimTest, ManhattanTripsShorterDistance) {
  TaxiSimulator sim(TinyTaxi(), 7);
  // Median: robust to the glitched (inflated) recorded vectors.
  auto median_dist = [](const Dataset& ds) {
    std::vector<double> d;
    for (size_t i = 0; i < ds.size(); ++i) {
      const double dx = ds.inputs.At(i, kDropoffDx);
      const double dy = ds.inputs.At(i, kDropoffDy);
      d.push_back(std::sqrt(dx * dx + dy * dy));
    }
    return stats::Median(std::move(d));
  };
  EXPECT_LT(median_dist(sim.GenerateTarget()),
            median_dist(sim.GenerateSource()) * 0.6);
}

TEST(TaxiSimTest, ManhattanDurationsClusterShort) {
  // Manhattan trips are short hops, so the target duration distribution
  // concentrates below the source's — the prior TASFAR exploits.
  TaxiSimulator sim(TinyTaxi(), 9);
  EXPECT_LT(stats::Median(Labels(sim.GenerateTarget())),
            stats::Median(Labels(sim.GenerateSource())) * 0.8);
}

TEST(TaxiSimTest, GlitchesInflateRecordedDistanceTail) {
  // ~30% of Manhattan rows carry multipath-inflated trip vectors: the
  // recorded-distance distribution becomes heavy-tailed (mean >> median).
  TaxiSimulator sim(TinyTaxi(), 10);
  Dataset tgt = sim.GenerateTarget();
  std::vector<double> d;
  for (size_t i = 0; i < tgt.size(); ++i) {
    const double dx = tgt.inputs.At(i, kDropoffDx);
    const double dy = tgt.inputs.At(i, kDropoffDy);
    d.push_back(std::sqrt(dx * dx + dy * dy));
  }
  EXPECT_GT(stats::Mean(d), 2.5 * stats::Median(d));
}

TEST(TaxiSimTest, HourFeaturesOnUnitCircle) {
  TaxiSimulator sim(TinyTaxi(), 11);
  Dataset src = sim.GenerateSource();
  for (size_t i = 0; i < src.size(); ++i) {
    const double s = src.inputs.At(i, kHourSin);
    const double c = src.inputs.At(i, kHourCos);
    EXPECT_NEAR(s * s + c * c, 1.0, 1e-9);
  }
}

TEST(TaxiSimTest, DurationsWithinBounds) {
  TaxiSimulator sim(TinyTaxi(), 13);
  Dataset tgt = sim.GenerateTarget();
  EXPECT_GE(tgt.targets.Min(), 1.0);
  EXPECT_LE(tgt.targets.Max(), 180.0);
}

// --- Shared model builder ------------------------------------------------

TEST(BuildTabularModelTest, ShapeAndStochasticDropout) {
  Rng rng(17);
  auto model = BuildTabularModel(8, &rng);
  Tensor x = Tensor::RandomNormal({4, 8}, &rng);
  Tensor y = model->Forward(x, false);
  EXPECT_EQ(y.dim(1), 1u);
  EXPECT_GT(model->Forward(x, true).MaxAbsDiff(model->Forward(x, true)),
            0.0);
}

}  // namespace
}  // namespace tasfar
