// Unit tier for the serving session (src/serve/session.h): the state
// machine, budget enforcement, degradation on a killed adapt job, and the
// save/restore round trip. Uses a small shared demo bundle so the adapt
// path runs the real TASFAR pipeline end to end.

#include "serve/session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/demo.h"
#include "tensor/tensor.h"
#include "util/failpoint.h"

namespace tasfar::serve {
namespace {

// Trained once for the whole binary; every test clones from it.
const DemoBundle& Bundle() {
  static const DemoBundle* bundle =
      new DemoBundle(BuildDemoBundle(/*source_samples=*/800,
                                     /*target_samples=*/200, /*epochs=*/6));
  return *bundle;
}

SessionConfig SmallConfig() {
  SessionConfig config;
  config.input_dim = Bundle().target_rows.dim(1);
  config.seed = 42;
  return config;
}

std::unique_ptr<Session> MakeSession(const std::string& user,
                                     const SessionConfig& config) {
  // Mirrors SessionManager::Create: the session adapts against the
  // calibration fit on its own backend's uncertainty scale.
  const DemoBundle& b = Bundle();
  return std::make_unique<Session>(user, *b.model,
                                   &b.CalibrationFor(config.backend),
                                   b.options, config);
}

Tensor Rows(size_t n) {
  return Bundle().target_rows.SliceRows(0, n);
}

uint64_t CounterValue(const char* name) {
  return obs::Registry::Get().GetCounter(name)->value();
}

// A fresh session's used_bytes is exactly the preallocated telemetry rings
// (no rows yet); tight-budget tests add it so their row math stays exact.
uint64_t TelemetryOverheadBytes() {
  static const uint64_t bytes =
      MakeSession("probe", SmallConfig())->Info().used_bytes;
  return bytes;
}

// --- state machine ----------------------------------------------------------

TEST(SessionTest, FreshSessionIsCreatedAndServesSource) {
  auto session = MakeSession("u", SmallConfig());
  const SessionInfo info = session->Info();
  EXPECT_EQ(info.state, SessionState::kCreated);
  EXPECT_EQ(info.pending_rows, 0u);
  EXPECT_FALSE(info.serving_adapted);

  // A created session already answers predictions from the source replica.
  const Tensor inputs = Rows(3);
  auto pred = session->Predict(inputs);
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_EQ(pred.value().predictions.size(), 3u);
  EXPECT_FALSE(pred.value().from_adapted);
}

TEST(SessionTest, SubmitMovesToAccumulating) {
  auto session = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(10);
  ASSERT_TRUE(session
                  ->SubmitRows(10, rows.dim(1),
                               rows.data())
                  .ok());
  const SessionInfo info = session->Info();
  EXPECT_EQ(info.state, SessionState::kAccumulating);
  EXPECT_EQ(info.pending_rows, 10u);
  EXPECT_GT(info.used_bytes, 0u);
}

TEST(SessionTest, SubmitRejectsFeatureMismatch) {
  auto session = MakeSession("u", SmallConfig());
  const std::vector<double> row(3, 0.0);
  const Status s = session->SubmitRows(1, 3, row.data());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Info().state, SessionState::kCreated);
}

TEST(SessionTest, BeginAdaptRequiresAccumulating) {
  auto session = MakeSession("u", SmallConfig());
  EXPECT_EQ(session->BeginAdapt().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, SubmitWhileAdaptingIsRejected) {
  auto session = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(20);
  const size_t cols = rows.dim(1);
  ASSERT_TRUE(session->SubmitRows(20, cols, rows.data()).ok());
  ASSERT_TRUE(session->BeginAdapt().ok());
  EXPECT_EQ(session->Info().state, SessionState::kAdapting);
  EXPECT_EQ(session->SubmitRows(1, cols, rows.data()).code(),
            StatusCode::kFailedPrecondition);
  // AbortAdapt (the admission-control bail-out) reopens the session.
  session->AbortAdapt();
  EXPECT_EQ(session->Info().state, SessionState::kAccumulating);
  EXPECT_TRUE(session->SubmitRows(1, cols, rows.data()).ok());
}

TEST(SessionTest, AdaptInstallsTargetModel) {
  auto session = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(200);
  ASSERT_TRUE(session
                  ->SubmitRows(200, rows.dim(1),
                               rows.data())
                  .ok());
  ASSERT_TRUE(session->BeginAdapt().ok());
  session->RunAdaptAndFinish(/*adapt_seed=*/7);
  const SessionInfo info = session->Info();
  ASSERT_EQ(info.state, SessionState::kAdapted)
      << "degraded: " << info.degraded_reason;
  EXPECT_TRUE(info.serving_adapted);
  EXPECT_EQ(info.adapt_runs, 1u);
  // Rows are retained across the adapt — they stay in the budget and seed
  // the next re-adapt.
  EXPECT_EQ(info.pending_rows, 200u);

  auto pred = session->Predict(Rows(2));
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(pred.value().from_adapted);
}

// --- budget -----------------------------------------------------------------

TEST(SessionTest, BudgetRejectsOversizedSubmit) {
  obs::SetMetricsEnabled(true);
  SessionConfig config = SmallConfig();
  config.budget_bytes =
      TelemetryOverheadBytes() + 8 * config.input_dim * 4;  // room for 4 rows
  auto session = MakeSession("u", config);
  const Tensor rows = Rows(16);
  const size_t cols = rows.dim(1);
  ASSERT_TRUE(session->SubmitRows(4, cols, rows.data()).ok());

  const uint64_t rejected_before =
      CounterValue("tasfar.serve.budget.rejected");
  const Status s = session->SubmitRows(1, cols, rows.data());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CounterValue("tasfar.serve.budget.rejected"),
            rejected_before + 1);
  // The rejected submit left the session intact.
  EXPECT_EQ(session->Info().pending_rows, 4u);
  EXPECT_EQ(session->Info().state, SessionState::kAccumulating);
}

TEST(SessionTest, BeginAdaptPreChargesModelFootprint) {
  // Budget fits the rows but not rows + a detached adapted model, so the
  // overflow is rejected at BeginAdapt, not discovered mid-job.
  SessionConfig config = SmallConfig();
  config.budget_bytes = TelemetryOverheadBytes() + 8 * config.input_dim * 64 + 64;
  auto session = MakeSession("u", config);
  const Tensor rows = Rows(64);
  ASSERT_TRUE(session
                  ->SubmitRows(64, rows.dim(1),
                               rows.data())
                  .ok());
  EXPECT_EQ(session->BeginAdapt().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(session->Info().state, SessionState::kAccumulating);
}

// --- degradation ------------------------------------------------------------

TEST(SessionTest, KilledAdaptJobDegradesToSourceServing) {
  obs::SetMetricsEnabled(true);
  auto session = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(50);
  ASSERT_TRUE(session
                  ->SubmitRows(50, rows.dim(1),
                               rows.data())
                  .ok());
  ASSERT_TRUE(session->BeginAdapt().ok());

  const uint64_t degraded_before =
      CounterValue("tasfar.serve.session.degraded");
  ASSERT_TRUE(failpoint::Configure("serve.adapt_job").ok());
  session->RunAdaptAndFinish(/*adapt_seed=*/7);
  failpoint::Disable();

  const SessionInfo info = session->Info();
  EXPECT_EQ(info.state, SessionState::kDegraded);
  EXPECT_FALSE(info.serving_adapted);
  EXPECT_FALSE(info.degraded_reason.empty());
  EXPECT_EQ(CounterValue("tasfar.serve.session.degraded"),
            degraded_before + 1);

  // Never a dead session: predictions still flow, from the source model.
  auto pred = session->Predict(Rows(2));
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_FALSE(pred.value().from_adapted);
}

TEST(SessionTest, DegradationDumpsFlightRecorder) {
  obs::SetMetricsEnabled(true);
  auto session = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(50);
  ASSERT_TRUE(session->SubmitRows(50, rows.dim(1), rows.data()).ok());
  ASSERT_TRUE(session->BeginAdapt().ok());
  ASSERT_TRUE(failpoint::Configure("serve.adapt_job").ok());
  session->RunAdaptAndFinish(/*adapt_seed=*/7);
  failpoint::Disable();
  ASSERT_EQ(session->Info().state, SessionState::kDegraded);

  const TelemetrySnapshot t = session->Telemetry();
  // The dump was rendered at degradation time and retained for retrieval.
  ASSERT_FALSE(t.last_dump.empty());
  EXPECT_NE(t.last_dump.find("serve.flight.adapt_fault"), std::string::npos);
  EXPECT_NE(t.last_dump.find("serve.flight.session_degraded"),
            std::string::npos);
  EXPECT_NE(t.last_dump.find(session->Info().degraded_reason),
            std::string::npos)
      << t.last_dump;

  // The ring itself carries the same story, oldest first.
  ASSERT_GE(t.flight_events.size(), 4u);
  EXPECT_EQ(t.flight_events.front().code, FlightCode::kSessionCreated);
  EXPECT_EQ(t.flight_events.back().code, FlightCode::kSessionDegraded);
  // The faulted attempt still produced an adapt sample, outcome kFault.
  ASSERT_EQ(t.adapt_samples.size(), 1u);
  EXPECT_EQ(t.adapt_samples.back().outcome,
            static_cast<uint8_t>(AdaptOutcome::kFault));
}

TEST(SessionTest, ChaosEveryDegradationHasMatchingFlightDump) {
  // Chaos-tier invariant: under random failpoints, any session that ends
  // up degraded must hold a non-empty flight dump whose terminal event
  // matches the degradation reason — no silent degradations.
  obs::SetMetricsEnabled(true);
  const Tensor rows = Rows(50);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ASSERT_TRUE(failpoint::Configure("random:p=0.3:seed=" +
                                     std::to_string(seed))
                    .ok());
    auto session = MakeSession("u" + std::to_string(seed), SmallConfig());
    if (session->SubmitRows(50, rows.dim(1), rows.data()).ok() &&
        session->BeginAdapt().ok()) {
      session->RunAdaptAndFinish(/*adapt_seed=*/seed);
    }
    failpoint::Disable();
    const SessionInfo info = session->Info();
    if (info.state != SessionState::kDegraded) continue;
    const TelemetrySnapshot t = session->Telemetry();
    ASSERT_FALSE(t.last_dump.empty()) << "degraded without a flight dump";
    EXPECT_NE(t.last_dump.find("serve.flight.session_degraded"),
              std::string::npos);
    // Flight-event details are bounded (96 bytes), so match a prefix of
    // the reason rather than the whole string.
    EXPECT_NE(t.last_dump.find(info.degraded_reason.substr(0, 80)),
              std::string::npos)
        << "dump does not mention reason `" << info.degraded_reason
        << "`:\n"
        << t.last_dump;
    ASSERT_FALSE(t.flight_events.empty());
    EXPECT_EQ(t.flight_events.back().code, FlightCode::kSessionDegraded);
  }
}

// --- uncertainty backends (ISSUE 10) ----------------------------------------

SessionConfig BackendConfig(UncertaintyBackend backend) {
  SessionConfig config = SmallConfig();
  config.backend = backend;
  return config;
}

TEST(SessionTest, EveryBackendRunsAdaptAndPredict) {
  for (UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    SCOPED_TRACE(UncertaintyBackendName(backend));
    auto session = MakeSession("u", BackendConfig(backend));
    EXPECT_EQ(session->Info().backend, UncertaintyBackendName(backend));

    const Tensor rows = Rows(200);
    ASSERT_TRUE(session->SubmitRows(200, rows.dim(1), rows.data()).ok());
    ASSERT_TRUE(session->BeginAdapt().ok());
    session->RunAdaptAndFinish(/*adapt_seed=*/7);
    const SessionInfo info = session->Info();
    ASSERT_EQ(info.state, SessionState::kAdapted)
        << "degraded: " << info.degraded_reason;
    EXPECT_TRUE(info.serving_adapted);

    auto pred = session->Predict(Rows(3));
    ASSERT_TRUE(pred.ok()) << pred.status().ToString();
    EXPECT_TRUE(pred.value().from_adapted);
    for (const auto& p : pred.value().predictions) {
      EXPECT_TRUE(std::isfinite(p.mean[0]));
      EXPECT_GE(p.std[0], 0.0);
    }
  }
}

TEST(SessionTest, BackendCreationIncrementsItsCounter) {
  obs::SetMetricsEnabled(true);
  const uint64_t ensemble_before =
      CounterValue("tasfar.serve.session.backend.ensemble");
  const uint64_t laplace_before =
      CounterValue("tasfar.serve.session.backend.laplace");
  auto a = MakeSession("u", BackendConfig(UncertaintyBackend::kDeepEnsemble));
  auto b =
      MakeSession("v", BackendConfig(UncertaintyBackend::kLastLayerLaplace));
  EXPECT_EQ(CounterValue("tasfar.serve.session.backend.ensemble"),
            ensemble_before + 1);
  EXPECT_EQ(CounterValue("tasfar.serve.session.backend.laplace"),
            laplace_before + 1);
}

TEST(SessionTest, EnsembleSessionChargesMemberReplicasOnTheBudget) {
  // docs/SERVING.md: an ensemble session holds num_members - 1 extra
  // member replicas, charged conservatively at the full detached model
  // size each.
  auto mc = MakeSession("u", SmallConfig());
  auto ens =
      MakeSession("v", BackendConfig(UncertaintyBackend::kDeepEnsemble));
  size_t param_count = 0;
  for (const Tensor* p : Bundle().model->Params()) param_count += p->size();
  const uint64_t expected_extra =
      (Bundle().options.ensemble_members - 1) * param_count * sizeof(double);
  EXPECT_EQ(ens->Info().used_bytes,
            mc->Info().used_bytes + expected_extra);
}

TEST(SessionTest, EnsembleBudgetTooSmallForReplicasRejectsCreation) {
  // The replica charge participates in budget enforcement from the first
  // submit: a budget that fits rows under mc_dropout overflows under the
  // ensemble backend.
  SessionConfig config = BackendConfig(UncertaintyBackend::kDeepEnsemble);
  config.budget_bytes =
      TelemetryOverheadBytes() + 8 * config.input_dim * 4;  // rows only
  auto session = MakeSession("u", config);
  const Tensor rows = Rows(4);
  EXPECT_EQ(session->SubmitRows(4, rows.dim(1), rows.data()).code(),
            StatusCode::kOutOfRange);
}

TEST(SessionTest, KilledAdaptOnEnsembleBackendDegradesToSourceServing) {
  // The degradation contract is backend-agnostic: a killed adapt job on an
  // ensemble session leaves it serving source-model predictions.
  obs::SetMetricsEnabled(true);
  auto session =
      MakeSession("u", BackendConfig(UncertaintyBackend::kDeepEnsemble));
  const Tensor rows = Rows(50);
  ASSERT_TRUE(session->SubmitRows(50, rows.dim(1), rows.data()).ok());
  ASSERT_TRUE(session->BeginAdapt().ok());
  ASSERT_TRUE(failpoint::Configure("serve.adapt_job").ok());
  session->RunAdaptAndFinish(/*adapt_seed=*/7);
  failpoint::Disable();
  const SessionInfo info = session->Info();
  EXPECT_EQ(info.state, SessionState::kDegraded);
  EXPECT_FALSE(info.serving_adapted);
  auto pred = session->Predict(Rows(2));
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_FALSE(pred.value().from_adapted);
  for (const auto& p : pred.value().predictions) {
    EXPECT_TRUE(std::isfinite(p.mean[0]));
  }
}

// --- save / restore ---------------------------------------------------------

TEST(SessionTest, SaveRestoreRoundTripsAdaptedSession) {
  auto original = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(200);
  ASSERT_TRUE(original
                  ->SubmitRows(200, rows.dim(1),
                               rows.data())
                  .ok());
  ASSERT_TRUE(original->BeginAdapt().ok());
  original->RunAdaptAndFinish(/*adapt_seed=*/7);
  ASSERT_EQ(original->Info().state, SessionState::kAdapted);

  const std::string blob = original->SerializeState();
  // Restore targets a fresh session under the *same* user id (a mismatch
  // is rejected — see RestoreRejectsUserMismatch).
  auto restored = MakeSession("u", SmallConfig());
  ASSERT_TRUE(restored->RestoreState(blob).ok());

  const SessionInfo a = original->Info();
  const SessionInfo b = restored->Info();
  EXPECT_EQ(b.state, SessionState::kAdapted);
  EXPECT_EQ(b.pending_rows, a.pending_rows);
  EXPECT_EQ(b.used_bytes, a.used_bytes);
  EXPECT_TRUE(b.serving_adapted);

  // Both predictors sit at call index 0 over byte-identical models, so the
  // next predictions agree exactly.
  const Tensor probe = Rows(4);
  auto pa = original->Predict(probe);
  auto pb = restored->Predict(probe);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  ASSERT_EQ(pa.value().predictions.size(), pb.value().predictions.size());
  for (size_t i = 0; i < pa.value().predictions.size(); ++i) {
    EXPECT_EQ(pa.value().predictions[i].mean, pb.value().predictions[i].mean);
    EXPECT_EQ(pa.value().predictions[i].std, pb.value().predictions[i].std);
  }
}

TEST(SessionTest, RestoreRequiresFreshSession) {
  auto session = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(2);
  ASSERT_TRUE(session
                  ->SubmitRows(2, rows.dim(1),
                               rows.data())
                  .ok());
  const Status s = session->RestoreState(MakeSession("v", SmallConfig())
                                             ->SerializeState());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, RestoreRejectsGarbageWithoutMutating) {
  auto session = MakeSession("u", SmallConfig());
  EXPECT_FALSE(session->RestoreState("not a session blob").ok());
  EXPECT_EQ(session->Info().state, SessionState::kCreated);
  EXPECT_TRUE(session->Predict(Rows(1)).ok());
}

TEST(SessionTest, RestoreRejectsUserMismatch) {
  auto original = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(4);
  ASSERT_TRUE(original->SubmitRows(4, rows.dim(1), rows.data()).ok());
  const std::string blob = original->SerializeState();

  // One user's blob must never land in another tenant's session.
  auto other = MakeSession("v", SmallConfig());
  const Status s = other->RestoreState(blob);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(other->Info().state, SessionState::kCreated);
  EXPECT_EQ(other->Info().pending_rows, 0u);
}

TEST(SessionTest, RestoreRejectsAdaptingStateBlob) {
  // No save ever writes `state adapting` (SerializeState persists it as
  // accumulating), so such a blob is crafted — and committing it would
  // wedge the session: submits/adapts reject while kAdapting and no job
  // exists to finish it.
  auto original = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(4);
  ASSERT_TRUE(original->SubmitRows(4, rows.dim(1), rows.data()).ok());
  std::string blob = original->SerializeState();
  const std::string from = "state accumulating";
  const size_t at = blob.find(from);
  ASSERT_NE(at, std::string::npos);
  blob.replace(at, from.size(), "state adapting");

  auto fresh = MakeSession("u", SmallConfig());
  EXPECT_EQ(fresh->RestoreState(blob).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fresh->Info().state, SessionState::kCreated);
  // Not wedged: the session still accepts work.
  EXPECT_TRUE(fresh->SubmitRows(1, rows.dim(1), rows.data()).ok());
}

TEST(SessionTest, RestoreRejectsAdaptedStateWithoutParams) {
  auto original = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(4);
  ASSERT_TRUE(original->SubmitRows(4, rows.dim(1), rows.data()).ok());
  std::string blob = original->SerializeState();
  const std::string from = "state accumulating";
  const size_t at = blob.find(from);
  ASSERT_NE(at, std::string::npos);
  blob.replace(at, from.size(), "state adapted");  // but `adapted 0`

  auto fresh = MakeSession("u", SmallConfig());
  EXPECT_EQ(fresh->RestoreState(blob).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fresh->Info().state, SessionState::kCreated);
}

TEST(SessionTest, RestoreEnforcesBudget) {
  // Restore is not a side door past admission control: the blob's
  // footprint is charged against the target session's budget exactly as
  // SubmitRows/BeginAdapt would charge it.
  obs::SetMetricsEnabled(true);
  auto original = MakeSession("u", SmallConfig());
  const Tensor rows = Rows(64);
  ASSERT_TRUE(original->SubmitRows(64, rows.dim(1), rows.data()).ok());
  const std::string blob = original->SerializeState();

  SessionConfig tiny = SmallConfig();
  tiny.budget_bytes =
      TelemetryOverheadBytes() + 8 * tiny.input_dim * 4;  // room for 4 rows
  auto fresh = MakeSession("u", tiny);
  const uint64_t rejected_before =
      CounterValue("tasfar.serve.budget.rejected");
  const Status s = fresh->RestoreState(blob);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CounterValue("tasfar.serve.budget.rejected"),
            rejected_before + 1);
  EXPECT_EQ(fresh->Info().state, SessionState::kCreated);
  EXPECT_EQ(fresh->Info().pending_rows, 0u);
}

TEST(SessionTest, RestoreFailpointSurfacesIoError) {
  auto fresh = MakeSession("u", SmallConfig());
  const std::string blob = MakeSession("v", SmallConfig())->SerializeState();
  ASSERT_TRUE(failpoint::Configure("serve.session_restore").ok());
  const Status s = fresh->RestoreState(blob);
  failpoint::Disable();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // The failed restore leaves the session serving.
  EXPECT_TRUE(fresh->Predict(Rows(1)).ok());
}

}  // namespace
}  // namespace tasfar::serve
