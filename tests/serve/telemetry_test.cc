// Unit tier for the per-session telemetry rings (src/serve/telemetry.h):
// ring wrap-around order, metrics gating, the flight-recorder dump, and
// the fixed memory footprint charged to the session budget.

#include "serve/telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace tasfar::serve {
namespace {

AdaptSample Sample(uint64_t run) {
  AdaptSample s;
  s.t_us = run * 1000;
  s.adapt_run = run;
  s.outcome = static_cast<uint8_t>(AdaptOutcome::kAdapted);
  s.final_loss = static_cast<double>(run) * 0.5;
  return s;
}

TEST(SessionTelemetryTest, FlightCodeNamesAreStable) {
  EXPECT_STREQ(FlightCodeName(FlightCode::kSessionCreated),
               "session_created");
  EXPECT_STREQ(FlightCodeName(FlightCode::kAdaptFellBack), "adapt_fell_back");
  EXPECT_STREQ(FlightCodeName(FlightCode::kBudgetRejected),
               "budget_rejected");
  EXPECT_STREQ(FlightCodeName(static_cast<FlightCode>(200)), "unknown");
  EXPECT_STREQ(AdaptOutcomeName(AdaptOutcome::kFault), "fault");
}

TEST(SessionTelemetryTest, RecordsNothingWhileMetricsDisabled) {
  obs::SetMetricsEnabled(false);
  SessionTelemetry t(4, 4);
  t.RecordAdapt(Sample(1));
  t.RecordFlight(FlightCode::kSessionCreated, 0, "x");
  t.RecordPredictLatencyMs(1.0);
  const TelemetrySnapshot snap = t.Snapshot();
  EXPECT_TRUE(snap.adapt_samples.empty());
  EXPECT_TRUE(snap.flight_events.empty());
  EXPECT_EQ(snap.predict_count, 0u);
}

TEST(SessionTelemetryTest, SnapshotIsOldestFirstAfterWrap) {
  obs::SetMetricsEnabled(true);
  SessionTelemetry t(4, 4);
  for (uint64_t run = 1; run <= 10; ++run) t.RecordAdapt(Sample(run));
  const TelemetrySnapshot snap = t.Snapshot();
  // Capacity 4, 10 recorded: the ring holds runs 7..10, oldest first.
  ASSERT_EQ(snap.adapt_samples.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.adapt_samples[i].adapt_run, 7 + i);
  }
}

TEST(SessionTelemetryTest, FlightRingWrapsAndTruncatesDetail) {
  obs::SetMetricsEnabled(true);
  SessionTelemetry t(2, 3);
  const std::string longdetail(200, 'x');
  for (int i = 0; i < 5; ++i) {
    t.RecordFlight(FlightCode::kRowsSubmitted, 42,
                   "event-" + std::to_string(i));
  }
  t.RecordFlight(FlightCode::kAdaptFault, 7, longdetail);
  const TelemetrySnapshot snap = t.Snapshot();
  ASSERT_EQ(snap.flight_events.size(), 3u);
  EXPECT_EQ(std::string(snap.flight_events[0].detail), "event-3");
  EXPECT_EQ(snap.flight_events[0].trace_id, 42u);
  // The 96-byte detail buffer truncates, NUL-terminated, no allocation.
  const std::string got(snap.flight_events[2].detail);
  EXPECT_EQ(got.size(), sizeof(FlightEvent{}.detail) - 1);
  EXPECT_EQ(got, longdetail.substr(0, got.size()));
  EXPECT_EQ(snap.flight_events[2].code, FlightCode::kAdaptFault);
}

TEST(SessionTelemetryTest, DumpRendersRingAndIsRetained) {
  obs::SetMetricsEnabled(true);
  SessionTelemetry t(4, 8);
  t.RecordFlight(FlightCode::kSessionCreated, 0, "input_dim=8");
  t.RecordFlight(FlightCode::kAdaptStarted, 99, "seed=7");
  t.RecordFlight(FlightCode::kSessionDegraded, 99, "boom");
  const std::string& dump = t.DumpFlight("alice", "boom");
  EXPECT_NE(dump.find("alice"), std::string::npos);
  EXPECT_NE(dump.find("boom"), std::string::npos);
  EXPECT_NE(dump.find("serve.flight.session_created"), std::string::npos);
  EXPECT_NE(dump.find("serve.flight.adapt_started"), std::string::npos);
  EXPECT_NE(dump.find("serve.flight.session_degraded"), std::string::npos);
  EXPECT_NE(dump.find("trace=99"), std::string::npos);
  // Retained for later InspectSession retrieval.
  EXPECT_EQ(t.Snapshot().last_dump, dump);
}

TEST(SessionTelemetryTest, PredictLatencyQuantiles) {
  obs::SetMetricsEnabled(true);
  SessionTelemetry t(4, 4);
  const TelemetrySnapshot before = t.Snapshot();
  EXPECT_EQ(before.predict_count, 0u);
  EXPECT_TRUE(std::isnan(before.predict_p50_ms));
  for (int i = 0; i < 100; ++i) t.RecordPredictLatencyMs(1.0);
  const TelemetrySnapshot after = t.Snapshot();
  EXPECT_EQ(after.predict_count, 100u);
  EXPECT_GT(after.predict_p50_ms, 0.0);
  EXPECT_GE(after.predict_p99_ms, after.predict_p50_ms);
}

TEST(SessionTelemetryTest, MemoryBytesCoversPreallocatedRings) {
  SessionTelemetry t(64, 128);
  // The footprint must at least cover both rings — it is what the session
  // charges against its budget at creation.
  EXPECT_GE(t.MemoryBytes(),
            64 * sizeof(AdaptSample) + 128 * sizeof(FlightEvent));
  // And it is a fixed cost: recording never grows the rings.
  obs::SetMetricsEnabled(true);
  const size_t before = t.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    t.RecordAdapt(Sample(static_cast<uint64_t>(i)));
    t.RecordFlight(FlightCode::kRowsSubmitted, 0, "r");
    t.RecordPredictLatencyMs(0.5);
  }
  EXPECT_EQ(t.MemoryBytes(), before);
}

}  // namespace
}  // namespace tasfar::serve
