// Integration tier for the serving stack: a live Server on an ephemeral
// loopback port driven through the real Client. Proves the ISSUE's
// acceptance criteria: served predictions after an Adapt are
// byte-identical to the in-process pipeline at several thread counts,
// concurrent clients are isolated, and a killed adapt job degrades the
// session to source-model serving instead of killing it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "core/tasfar.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/demo.h"
#include "serve/server.h"
#include "uncertainty/mc_dropout.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tasfar::serve {
namespace {

constexpr uint64_t kSessionSeed = 42;
constexpr uint64_t kAdaptSeed = 7;

// Trained once for the whole binary.
const DemoBundle& Bundle() {
  static const DemoBundle* bundle =
      new DemoBundle(BuildDemoBundle(/*source_samples=*/800,
                                     /*target_samples=*/200, /*epochs=*/6));
  return *bundle;
}

std::unique_ptr<Server> StartServer() {
  const DemoBundle& b = Bundle();
  ServerConfig config;
  config.port = 0;  // ephemeral
  auto server =
      std::make_unique<Server>(b.model.get(), &b.calibration, b.options, config);
  // Same registration the demo daemon performs: one calibration per
  // served backend, each fit on that backend's uncertainty scale.
  server->RegisterBackendCalibration(UncertaintyBackend::kDeepEnsemble,
                                     &b.ensemble_calibration);
  server->RegisterBackendCalibration(UncertaintyBackend::kLastLayerLaplace,
                                     &b.laplace_calibration);
  const Status s = server->Start();
  EXPECT_TRUE(s.ok()) << s.ToString();
  return server;
}

// Polls QuerySession until the session leaves kAdapting (50 ms period,
// generous deadline — the adapt job runs a real fine-tune).
bool WaitNotAdapting(Client* client, const std::string& user,
                     ClientSessionInfo* out) {
  for (int i = 0; i < 2400; ++i) {
    Result<ClientSessionInfo> info = client->QuerySession(user);
    if (!info.ok()) return false;
    if (info.value().state != SessionState::kAdapting &&
        info.value().state != SessionState::kCreated &&
        info.value().state != SessionState::kAccumulating) {
      *out = info.value();
      return true;
    }
    if (info.value().state == SessionState::kAccumulating &&
        info.value().adapt_runs > 0) {
      *out = info.value();
      return true;
    }
    ::poll(nullptr, 0, 50);
  }
  return false;
}

// The in-process reference: the exact pipeline the server runs, on clones
// of the same bundle. Returns the MC-dropout predictions the session's
// first post-adapt Predict must reproduce bit for bit.
std::vector<McPrediction> InProcessReference(const Tensor& adapt_rows,
                                             const Tensor& probe) {
  const DemoBundle& b = Bundle();
  std::unique_ptr<Sequential> model = b.model->CloneSequential();
  Rng rng(kAdaptSeed);
  TasfarReport report =
      Tasfar(b.options).Adapt(model.get(), b.calibration, adapt_rows, &rng);
  EXPECT_FALSE(report.skipped);
  EXPECT_FALSE(report.fell_back) << report.fallback_reason;
  McDropoutPredictor predictor(report.target_model.get(), b.options.mc_samples,
                               /*batch_size=*/64, kSessionSeed);
  return predictor.Predict(probe);
}

// --- byte identity ----------------------------------------------------------

TEST(ServeLoopbackTest, PredictAfterAdaptIsByteIdenticalAcrossThreadCounts) {
  const DemoBundle& b = Bundle();
  const Tensor adapt_rows = b.target_rows.SliceRows(0, 200);
  const Tensor probe = b.target_rows.SliceRows(0, 8);
  const uint32_t cols = static_cast<uint32_t>(probe.dim(1));

  const size_t original_threads = GetNumThreads();
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetNumThreads(threads);

    const std::vector<McPrediction> expected =
        InProcessReference(adapt_rows, probe);

    std::unique_ptr<Server> server = StartServer();
    Client client;
    ASSERT_TRUE(client.Connect(server->port()).ok());
    ASSERT_TRUE(
        client.CreateSession("alice", kSessionSeed, cols).ok());
    ASSERT_TRUE(client
                    .SubmitTargetData("alice", 200, cols, adapt_rows.data())
                    .ok());
    ASSERT_TRUE(client.Adapt("alice", kAdaptSeed).ok());
    ClientSessionInfo info;
    ASSERT_TRUE(WaitNotAdapting(&client, "alice", &info));
    ASSERT_EQ(info.state, SessionState::kAdapted)
        << "degraded: " << info.degraded_reason;

    Result<ClientPrediction> served =
        client.Predict("alice", 8, cols, probe.data());
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_TRUE(served.value().from_adapted);
    ASSERT_EQ(served.value().predictions.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      // Doubles travel as bit patterns; == here is bit equality for the
      // finite values the pipeline produces.
      EXPECT_EQ(served.value().predictions[i].mean, expected[i].mean)
          << "row " << i;
      EXPECT_EQ(served.value().predictions[i].std, expected[i].std)
          << "row " << i;
    }
    server->Stop();
  }
  SetNumThreads(original_threads);
}

// --- uncertainty backends over the wire (ISSUE 10) --------------------------

TEST(ServeLoopbackTest, EveryBackendAdaptsAndPredictsOverTheWire) {
  const DemoBundle& b = Bundle();
  const Tensor adapt_rows = b.target_rows.SliceRows(0, 200);
  const Tensor probe = b.target_rows.SliceRows(0, 6);
  const uint32_t cols = static_cast<uint32_t>(probe.dim(1));

  std::unique_ptr<Server> server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect(server->port()).ok());
  for (const UncertaintyBackend backend :
       {UncertaintyBackend::kMcDropout, UncertaintyBackend::kDeepEnsemble,
        UncertaintyBackend::kLastLayerLaplace}) {
    const std::string user =
        std::string("wire-") + UncertaintyBackendName(backend);
    SCOPED_TRACE(user);
    ASSERT_TRUE(
        client.CreateSession(user, kSessionSeed, cols, /*budget_bytes=*/0,
                             backend)
            .ok());
    Result<ClientSessionInfo> created = client.QuerySession(user);
    ASSERT_TRUE(created.ok());
    EXPECT_EQ(created.value().backend, UncertaintyBackendName(backend));

    ASSERT_TRUE(
        client.SubmitTargetData(user, 200, cols, adapt_rows.data()).ok());
    ASSERT_TRUE(client.Adapt(user, kAdaptSeed).ok());
    ClientSessionInfo info;
    ASSERT_TRUE(WaitNotAdapting(&client, user, &info));
    ASSERT_EQ(info.state, SessionState::kAdapted)
        << "degraded: " << info.degraded_reason;

    Result<ClientPrediction> served =
        client.Predict(user, 6, cols, probe.data());
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_TRUE(served.value().from_adapted);
    ASSERT_EQ(served.value().predictions.size(), 6u);
    for (const WirePrediction& p : served.value().predictions) {
      for (const double m : p.mean) EXPECT_TRUE(std::isfinite(m));
      for (const double s : p.std) {
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_GE(s, 0.0);
      }
    }
  }
}

TEST(ServeLoopbackTest, UnknownBackendByteIsRejectedAtCreate) {
  std::unique_ptr<Server> server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect(server->port()).ok());
  const Status st = client.CreateSession(
      "mallory", kSessionSeed, 8, /*budget_bytes=*/0,
      static_cast<UncertaintyBackend>(7));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(client.last_wire_error(), WireError::kBadRequest);
  // The connection (and the server) survived the bad byte.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.CreateSession("mallory", kSessionSeed, 8).ok());
}

TEST(ServeLoopbackTest, BackendWithoutCalibrationIsRejectedAtCreate) {
  // A server given only the ctor calibration (no demo registrations)
  // serves exactly options.uncertainty_backend — a session on any other
  // backend would adapt against a mismatched uncertainty scale, so the
  // create is refused as bad_request rather than degrading later.
  const DemoBundle& b = Bundle();
  ServerConfig config;
  config.port = 0;
  Server server(b.model.get(), &b.calibration, b.options, config);
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  const uint32_t cols = static_cast<uint32_t>(b.target_rows.dim(1));
  const Status st =
      client.CreateSession("u", kSessionSeed, cols, /*budget_bytes=*/0,
                           UncertaintyBackend::kLastLayerLaplace);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(client.last_wire_error(), WireError::kBadRequest);
  // The default backend still creates fine.
  EXPECT_TRUE(client.CreateSession("u", kSessionSeed, cols).ok());
}

// --- distributed tracing & per-session telemetry ----------------------------

// In-process reference pipeline run, for comparing InspectSession's final
// adapt sample bit-for-bit.
TasfarReport ReferenceReport(const Tensor& adapt_rows) {
  const DemoBundle& b = Bundle();
  std::unique_ptr<Sequential> model = b.model->CloneSequential();
  Rng rng(kAdaptSeed);
  return Tasfar(b.options).Adapt(model.get(), b.calibration, adapt_rows, &rng);
}

// Extracts (name, trace_id) pairs from an exported Chrome trace: the
// exporter writes one JSON object per line, so a line-oriented scan is
// exact enough without a JSON library.
std::vector<std::pair<std::string, uint64_t>> NamedTraceIds(
    const std::string& path) {
  std::ifstream in(path);
  std::vector<std::pair<std::string, uint64_t>> out;
  std::string line;
  while (std::getline(in, line)) {
    const size_t name_at = line.find("\"name\": \"");
    const size_t id_at = line.find("\"trace_id\": ");
    if (name_at == std::string::npos || id_at == std::string::npos) continue;
    const size_t name_begin = name_at + 9;
    const size_t name_end = line.find('"', name_begin);
    out.emplace_back(
        line.substr(name_begin, name_end - name_begin),
        std::strtoull(line.c_str() + id_at + 12, nullptr, 10));
  }
  return out;
}

TEST(ServeLoopbackTest, OneTraceIdLinksClientServerAdaptJobAndPoolLeaves) {
  // ISSUE acceptance: a single trace id links the client call span, the
  // server dispatch span, the background adapt-job span, and the
  // ParallelFor leaf spans — asserted from the *exported* trace JSON.
  const bool was_tracing = obs::TracingEnabled();
  obs::SetTracingEnabled(true);
  obs::ClearTraceEvents();
  const size_t original_threads = GetNumThreads();
  SetNumThreads(2);  // chunk spans exist only on the queued-worker path

  const DemoBundle& b = Bundle();
  const Tensor adapt_rows = b.target_rows.SliceRows(0, 200);
  const uint32_t cols = static_cast<uint32_t>(adapt_rows.dim(1));
  {
    std::unique_ptr<Server> server = StartServer();
    Client client;
    ASSERT_TRUE(client.Connect(server->port()).ok());
    ASSERT_TRUE(client.CreateSession("traced", kSessionSeed, cols).ok());
    ASSERT_TRUE(
        client.SubmitTargetData("traced", 200, cols, adapt_rows.data()).ok());
    ASSERT_TRUE(client.Adapt("traced", kAdaptSeed).ok());
    ClientSessionInfo info;
    ASSERT_TRUE(WaitNotAdapting(&client, "traced", &info));
    ASSERT_EQ(info.state, SessionState::kAdapted)
        << "degraded: " << info.degraded_reason;
    server->Stop();
  }
  SetNumThreads(original_threads);

  const std::string path = ::testing::TempDir() + "/tasfar_serve_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path));
  const auto named = NamedTraceIds(path);
  std::remove(path.c_str());
  obs::ClearTraceEvents();
  obs::SetTracingEnabled(was_tracing);

  // The adapt job ran exactly once; its trace id is the linking key.
  uint64_t adapt_trace = 0;
  for (const auto& [name, id] : named) {
    if (name != "serve.adapt_job") continue;
    EXPECT_EQ(adapt_trace, 0u) << "more than one adapt-job span";
    adapt_trace = id;
  }
  ASSERT_NE(adapt_trace, 0u);

  std::map<std::string, int> with_adapt_trace;
  for (const auto& [name, id] : named) {
    if (id == adapt_trace) ++with_adapt_trace[name];
  }
  // One client call (the kAdapt round trip, traced over the wire), one
  // server dispatch, one job, and at least one pool leaf per parallel
  // stage of the pipeline — all under the same id.
  EXPECT_EQ(with_adapt_trace["serve.client.call"], 1);
  EXPECT_EQ(with_adapt_trace["serve.request"], 1);
  EXPECT_EQ(with_adapt_trace["serve.adapt_job"], 1);
  EXPECT_GE(with_adapt_trace["thread_pool.chunk"], 1);
}

TEST(ServeLoopbackTest, InspectSessionFinalSampleIsByteExactAcrossThreads) {
  // ISSUE acceptance: the final InspectSession adapt sample matches the
  // in-process pipeline's quality metrics byte-exactly, at 1/2/8 threads.
  obs::SetMetricsEnabled(true);
  const DemoBundle& b = Bundle();
  const Tensor adapt_rows = b.target_rows.SliceRows(0, 200);
  const uint32_t cols = static_cast<uint32_t>(adapt_rows.dim(1));

  const size_t original_threads = GetNumThreads();
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetNumThreads(threads);

    const TasfarReport ref = ReferenceReport(adapt_rows);
    ASSERT_FALSE(ref.fell_back);
    ASSERT_FALSE(ref.skipped);

    std::unique_ptr<Server> server = StartServer();
    Client client;
    ASSERT_TRUE(client.Connect(server->port()).ok());
    ASSERT_TRUE(client.CreateSession("inspect", kSessionSeed, cols).ok());
    ASSERT_TRUE(
        client.SubmitTargetData("inspect", 200, cols, adapt_rows.data()).ok());
    ASSERT_TRUE(client.Adapt("inspect", kAdaptSeed).ok());
    ClientSessionInfo info;
    ASSERT_TRUE(WaitNotAdapting(&client, "inspect", &info));
    ASSERT_EQ(info.state, SessionState::kAdapted);

    Result<ClientSessionTelemetry> t = client.InspectSession("inspect");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t.value().state, SessionState::kAdapted);
    ASSERT_FALSE(t.value().adapt_samples.empty());
    const AdaptSample& got = t.value().adapt_samples.back();

    // Reference values via the same formulas the gauges use. Doubles
    // crossed the wire as bit patterns, so == is bit equality.
    const size_t split_total = ref.num_confident + ref.num_uncertain;
    const double want_ratio =
        split_total == 0 ? 0.0
                         : static_cast<double>(ref.num_uncertain) /
                               static_cast<double>(split_total);
    double credibility_sum = 0.0;
    for (const PseudoLabel& pl : ref.pseudo_labels) {
      credibility_sum += pl.credibility;
    }
    const double want_credibility =
        ref.pseudo_labels.empty()
            ? 0.0
            : credibility_sum / static_cast<double>(ref.pseudo_labels.size());

    EXPECT_EQ(got.outcome, 0u);  // AdaptOutcome::kAdapted
    EXPECT_EQ(got.adapt_run, 1u);
    EXPECT_EQ(got.uncertain_ratio, want_ratio);
    EXPECT_EQ(got.mean_credibility, want_credibility);
    ASSERT_TRUE(ref.density_map.has_value());
    EXPECT_EQ(got.density_total_mass, ref.density_map->TotalMass());
    EXPECT_EQ(got.density_mean_sigma, ref.density_mean_sigma);
    ASSERT_FALSE(ref.history.empty());
    EXPECT_EQ(got.final_loss, ref.history.back().train_loss);
    EXPECT_EQ(got.epochs, ref.history.size());
    ASSERT_EQ(got.epoch_loss_count,
              std::min(ref.history.size(), kEpochLossSlots));
    for (size_t i = 0; i < got.epoch_loss_count; ++i) {
      EXPECT_EQ(got.epoch_losses[i],
                ref.history[ref.history.size() - got.epoch_loss_count + i]
                    .train_loss);
    }

    // The flight ring tells the same story over the wire.
    ASSERT_FALSE(t.value().flight_events.empty());
    bool saw_completed = false;
    for (const ClientFlightEvent& ev : t.value().flight_events) {
      if (ev.code_name == "adapt_completed") saw_completed = true;
    }
    EXPECT_TRUE(saw_completed);
    EXPECT_TRUE(t.value().last_dump.empty());  // never degraded
    server->Stop();
  }
  SetNumThreads(original_threads);
}

// --- concurrent clients -----------------------------------------------------

TEST(ServeLoopbackTest, ConcurrentClientsAreIsolated) {
  const DemoBundle& b = Bundle();
  const Tensor probe = b.target_rows.SliceRows(0, 4);
  const uint32_t cols = static_cast<uint32_t>(probe.dim(1));
  std::unique_ptr<Server> server = StartServer();
  const uint16_t port = server->port();

  constexpr size_t kClients = 4;
  std::vector<ClientPrediction> results(kClients);
  std::vector<Status> outcomes(kClients,
                               Status::Internal("thread never ran"));
  {
    std::vector<std::unique_ptr<BackgroundThread>> threads;
    for (size_t i = 0; i < kClients; ++i) {
      threads.push_back(std::make_unique<BackgroundThread>(
          "loopback-client-" + std::to_string(i),
          [i, port, cols, &probe, &results, &outcomes] {
            const std::string user = "user-" + std::to_string(i);
            Client client;
            Status s = client.Connect(port);
            if (!s.ok()) {
              outcomes[i] = s;
              return;
            }
            s = client.CreateSession(user, kSessionSeed, cols);
            if (!s.ok()) {
              outcomes[i] = s;
              return;
            }
            Result<ClientPrediction> pred =
                client.Predict(user, 4, cols, probe.data());
            if (!pred.ok()) {
              outcomes[i] = pred.status();
              return;
            }
            results[i] = pred.value();
            outcomes[i] = Status::Ok();
          }));
    }
  }  // joins all clients

  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "client " << i << ": "
                                  << outcomes[i].ToString();
    ASSERT_EQ(results[i].predictions.size(), 4u);
    EXPECT_FALSE(results[i].from_adapted);
  }
  // Same source model, same session seed, same first call: every client
  // sees identical predictions — sessions do not bleed into each other.
  for (size_t i = 1; i < kClients; ++i) {
    for (size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(results[i].predictions[r].mean, results[0].predictions[r].mean);
      EXPECT_EQ(results[i].predictions[r].std, results[0].predictions[r].std);
    }
  }
  EXPECT_EQ(server->manager().NumSessions(), kClients);
}

// --- graceful degradation ---------------------------------------------------

TEST(ServeLoopbackTest, KilledAdaptJobLeavesSessionServingSource) {
  obs::SetMetricsEnabled(true);
  const DemoBundle& b = Bundle();
  const Tensor rows = b.target_rows.SliceRows(0, 50);
  const Tensor probe = b.target_rows.SliceRows(0, 3);
  const uint32_t cols = static_cast<uint32_t>(rows.dim(1));

  std::unique_ptr<Server> server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect(server->port()).ok());
  ASSERT_TRUE(client.CreateSession("bob", kSessionSeed, cols).ok());
  ASSERT_TRUE(client.SubmitTargetData("bob", 50, cols, rows.data()).ok());

  const uint64_t degraded_before =
      obs::Registry::Get().GetCounter("tasfar.serve.session.degraded")->value();
  ASSERT_TRUE(failpoint::Configure("serve.adapt_job").ok());
  ASSERT_TRUE(client.Adapt("bob", kAdaptSeed).ok());
  ClientSessionInfo info;
  const bool finished = WaitNotAdapting(&client, "bob", &info);
  failpoint::Disable();
  ASSERT_TRUE(finished);

  EXPECT_EQ(info.state, SessionState::kDegraded);
  EXPECT_FALSE(info.degraded_reason.empty());
  EXPECT_EQ(
      obs::Registry::Get().GetCounter("tasfar.serve.session.degraded")->value(),
      degraded_before + 1);

  // The session is degraded, not dead: predictions flow from the source
  // replica.
  Result<ClientPrediction> pred = client.Predict("bob", 3, cols, probe.data());
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  EXPECT_FALSE(pred.value().from_adapted);

  // And the metrics endpoint reports the degradation.
  Result<std::string> metrics = client.GetMetrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("tasfar_serve_session_degraded"),
            std::string::npos);
}

// --- wire-level error behavior ----------------------------------------------

// Bare socket speaking raw frames — for payloads the Client refuses to
// build (it derives lengths from real data, so it cannot lie about them).
class RawConnection {
 public:
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (w <= 0) return false;
      off += static_cast<size_t>(w);
    }
    return true;
  }

  bool ReadFrame(Frame* frame) {
    for (;;) {
      switch (reader_.Next(frame)) {
        case FrameReader::ReadResult::kFrame: return true;
        case FrameReader::ReadResult::kError: return false;
        case FrameReader::ReadResult::kNeedMore: break;
      }
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      reader_.Append(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

TEST(ServeLoopbackTest, OverflowingRowCountsAreRejectedNotFatal) {
  std::unique_ptr<Server> server = StartServer();
  RawConnection raw;
  ASSERT_TRUE(raw.Connect(server->port()));

  // rows=2^31, cols=2^30: rows*cols*8 ≡ 0 (mod 2^64), so this empty
  // payload used to pass the length check; the resulting 2^61-element
  // vector then threw past the network thread and std::terminate'd the
  // whole daemon.
  PayloadWriter w;
  w.PutString("nobody");
  w.PutU32(0x80000000u);
  w.PutU32(0x40000000u);
  ASSERT_TRUE(
      raw.Send(EncodeFrame(MessageType::kSubmitTargetData, w.Take())));
  Frame resp;
  ASSERT_TRUE(raw.ReadFrame(&resp));
  ASSERT_EQ(resp.type, MessageType::kErrorResponse);
  PayloadReader r(resp.payload);
  uint16_t code = 0;
  std::string msg;
  ASSERT_TRUE(r.GetU16(&code));
  ASSERT_TRUE(r.GetString(&msg));
  EXPECT_EQ(static_cast<WireError>(code), WireError::kBadRequest);

  // The same wrap through the Predict path.
  PayloadWriter wp;
  wp.PutString("nobody");
  wp.PutU32(0x80000000u);
  wp.PutU32(0x40000000u);
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageType::kPredict, wp.Take())));
  ASSERT_TRUE(raw.ReadFrame(&resp));
  EXPECT_EQ(resp.type, MessageType::kErrorResponse);

  // The connection — and the daemon — survived both.
  ASSERT_TRUE(raw.Send(EncodeFrame(MessageType::kPing, "")));
  ASSERT_TRUE(raw.ReadFrame(&resp));
  EXPECT_EQ(resp.type, MessageType::kPongResponse);
  Client client;
  ASSERT_TRUE(client.Connect(server->port()).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServeLoopbackTest, WhitespaceUserIdIsRejectedAtCreate) {
  std::unique_ptr<Server> server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect(server->port()).ok());
  EXPECT_FALSE(client.CreateSession("has space", 1, 8).ok());
  EXPECT_EQ(client.last_wire_error(), WireError::kBadRequest);
  EXPECT_FALSE(client.CreateSession("ctrl\x01id", 1, 8).ok());
  EXPECT_EQ(client.last_wire_error(), WireError::kBadRequest);
  // The connection survived; a clean id works.
  EXPECT_TRUE(client.CreateSession("dave", 1, 8).ok());
}

TEST(ServeLoopbackTest, ApplicationErrorsLeaveConnectionHealthy) {
  std::unique_ptr<Server> server = StartServer();
  Client client;
  ASSERT_TRUE(client.Connect(server->port()).ok());

  // Unknown session.
  EXPECT_FALSE(client.Adapt("ghost", 1).ok());
  EXPECT_EQ(client.last_wire_error(), WireError::kUnknownSession);

  // Duplicate create.
  ASSERT_TRUE(client.CreateSession("carol", 1, 8).ok());
  EXPECT_FALSE(client.CreateSession("carol", 1, 8).ok());
  EXPECT_EQ(client.last_wire_error(), WireError::kWrongState);

  // The connection survived both errors.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.CloseSession("carol").ok());
}

TEST(ServeLoopbackTest, SessionCapRejectsWithServerBusy) {
  const DemoBundle& b = Bundle();
  ServerConfig config;
  config.port = 0;
  config.manager.max_sessions = 2;
  Server server(b.model.get(), &b.calibration, b.options, config);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.CreateSession("a", 1, 8).ok());
  ASSERT_TRUE(client.CreateSession("b", 1, 8).ok());
  EXPECT_FALSE(client.CreateSession("c", 1, 8).ok());
  EXPECT_EQ(client.last_wire_error(), WireError::kServerBusy);

  // Closing one admits the next.
  ASSERT_TRUE(client.CloseSession("a").ok());
  EXPECT_TRUE(client.CreateSession("c", 1, 8).ok());
}

}  // namespace
}  // namespace tasfar::serve
