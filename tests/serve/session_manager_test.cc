// Unit tier for the session manager (src/serve/session_manager.h): user-id
// validation at Create (ids must survive the whitespace-delimited session
// blob format), the save/restore round trip through the manager, and the
// adapt JobRunner's drain semantics.

#include "serve/session_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "serve/demo.h"
#include "util/thread_pool.h"

namespace tasfar::serve {
namespace {

// Trained once for the whole binary; small — these tests never adapt.
const DemoBundle& Bundle() {
  static const DemoBundle* bundle =
      new DemoBundle(BuildDemoBundle(/*source_samples=*/200,
                                     /*target_samples=*/50, /*epochs=*/2));
  return *bundle;
}

std::unique_ptr<SessionManager> MakeManager(
    const ManagerConfig& config = ManagerConfig{}) {
  const DemoBundle& b = Bundle();
  auto manager = std::make_unique<SessionManager>(b.model.get(),
                                                  &b.calibration, b.options,
                                                  config);
  manager->RegisterBackendCalibration(UncertaintyBackend::kDeepEnsemble,
                                      &b.ensemble_calibration);
  manager->RegisterBackendCalibration(UncertaintyBackend::kLastLayerLaplace,
                                      &b.laplace_calibration);
  return manager;
}

SessionConfig Config() {
  SessionConfig config;
  config.input_dim = Bundle().target_rows.dim(1);
  return config;
}

// --- user-id validation -----------------------------------------------------

TEST(SessionManagerTest, CreateRejectsMalformedUserIds) {
  auto manager = MakeManager();
  const SessionConfig config = Config();
  EXPECT_EQ(manager->Create("", config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->Create("has space", config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->Create("new\nline", config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->Create("tab\tchar", config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->Create(std::string("nul\0byte", 8), config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->Create(std::string(1, '\x7f'), config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      manager->Create(std::string(kMaxUserIdBytes + 1, 'a'), config).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(manager->NumSessions(), 0u);

  // Sane ids (including the length boundary) still work.
  EXPECT_TRUE(manager->Create("alice-01_x.y", config).ok());
  EXPECT_TRUE(manager->Create(std::string(kMaxUserIdBytes, 'a'), config).ok());
  EXPECT_EQ(manager->NumSessions(), 2u);
}

TEST(SessionManagerTest, EveryCreatableIdRoundTripsItsOwnBlob) {
  // The charset rule exists so SerializeState → RestoreState can never
  // choke on the id line; prove it for a tricky-but-legal id (punctuation
  // and multi-byte UTF-8 are fine — only ASCII whitespace/control bytes
  // break the text format).
  auto manager = MakeManager();
  const std::string user = "ümlaut#42%x";
  ASSERT_TRUE(manager->Create(user, Config()).ok());
  std::shared_ptr<Session> session = manager->Find(user);
  ASSERT_NE(session, nullptr);
  const Tensor rows = Bundle().target_rows.SliceRows(0, 4);
  ASSERT_TRUE(session->SubmitRows(4, rows.dim(1), rows.data()).ok());
  const std::string blob = session->SerializeState();

  ASSERT_TRUE(manager->Close(user).ok());
  ASSERT_TRUE(manager->Create(user, Config()).ok());
  std::shared_ptr<Session> fresh = manager->Find(user);
  ASSERT_NE(fresh, nullptr);
  ASSERT_TRUE(fresh->RestoreState(blob).ok());
  EXPECT_EQ(fresh->Info().pending_rows, 4u);
}

// --- per-backend calibrations (ISSUE 10) ------------------------------------

TEST(SessionManagerTest, CreateRejectsBackendWithoutCalibration) {
  // A manager given only the ctor calibration serves exactly
  // options.uncertainty_backend (mc_dropout here): adapting a laplace
  // session against a dropout-scale τ would silently degenerate the
  // confidence split, so the mismatch is refused up front.
  const DemoBundle& b = Bundle();
  SessionManager manager(b.model.get(), &b.calibration, b.options,
                         ManagerConfig{});
  SessionConfig config = Config();
  config.backend = UncertaintyBackend::kLastLayerLaplace;
  const Status st = manager.Create("u", config);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("laplace"), std::string::npos);
  EXPECT_EQ(manager.NumSessions(), 0u);

  config.backend = UncertaintyBackend::kMcDropout;
  EXPECT_TRUE(manager.Create("u", config).ok());
}

TEST(SessionManagerTest, RegisteredBackendsCreateWithMatchingLabel) {
  auto manager = MakeManager();
  SessionConfig config = Config();
  config.backend = UncertaintyBackend::kDeepEnsemble;
  ASSERT_TRUE(manager->Create("ensemble-user", config).ok());
  config.backend = UncertaintyBackend::kLastLayerLaplace;
  ASSERT_TRUE(manager->Create("laplace-user", config).ok());
  EXPECT_EQ(manager->Find("ensemble-user")->Info().backend, "ensemble");
  EXPECT_EQ(manager->Find("laplace-user")->Info().backend, "laplace");
}

TEST(SessionManagerTest, SessionsTextReportsTheBackendColumn) {
  auto manager = MakeManager();
  SessionConfig config = Config();
  ASSERT_TRUE(manager->Create("mc-user", config).ok());
  config.backend = UncertaintyBackend::kDeepEnsemble;
  ASSERT_TRUE(manager->Create("ens-user", config).ok());
  const std::string text = manager->SessionsText();
  // Header names the column; each row carries the session's label in it.
  EXPECT_NE(text.find("user state backend rows"), std::string::npos);
  EXPECT_NE(text.find("mc-user created mc_dropout"), std::string::npos);
  EXPECT_NE(text.find("ens-user created ensemble"), std::string::npos);
}

// --- JobRunner drain --------------------------------------------------------

TEST(JobRunnerTest, DrainReturnsOnEmptyAndAfterJobsFinish) {
  std::atomic<int> ran{0};
  JobRunner runner(/*queue_capacity=*/4);
  runner.Drain();  // Empty queue, no job running: returns immediately.
  ASSERT_TRUE(runner.TrySubmit([&ran] { ran.fetch_add(1); }));
  ASSERT_TRUE(runner.TrySubmit([&ran] { ran.fetch_add(1); }));
  runner.Drain();
  EXPECT_EQ(ran.load(), 2);
}

TEST(JobRunnerTest, DrainConcurrentWithLastJobDoesNotHang) {
  // Regression for a missed wakeup: RunLoop notifies idle_cv_ only after
  // finishing a job, and used to exit on stop without a final notify, so
  // a Drain racing the queue going empty could wait forever. Joining the
  // drainer thread below is the assertion — a hang fails the test runner.
  for (int i = 0; i < 200; ++i) {
    std::atomic<int> ran{0};
    JobRunner runner(/*queue_capacity=*/4);
    ASSERT_TRUE(runner.TrySubmit([&ran] { ran.fetch_add(1); }));
    {
      BackgroundThread drainer("drainer", [&runner] { runner.Drain(); });
    }  // Joins: Drain must have returned.
    EXPECT_EQ(ran.load(), 1);
  }
}

}  // namespace
}  // namespace tasfar::serve
