// Unit tier for the serving wire codec (src/serve/protocol.h): frame
// round trips, incremental decode, protocol-error poisoning, and the
// payload primitive encodings. docs/PROTOCOL.md is the normative spec.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>

namespace tasfar::serve {
namespace {

std::string PayloadOf(size_t n) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<char>('a' + i % 26);
  return s;
}

// --- frame round trips ------------------------------------------------------

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const std::string payload = PayloadOf(37);
  const std::string wire = EncodeFrame(MessageType::kPredict, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());
  EXPECT_EQ(wire.compare(0, 4, kFrameMagic, 4), 0);

  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  EXPECT_EQ(frame.type, MessageType::kPredict);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(reader.Next(&frame), FrameReader::ReadResult::kNeedMore);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  const std::string wire = EncodeFrame(MessageType::kPing, "");
  ASSERT_EQ(wire.size(), kFrameHeaderBytes);
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  EXPECT_EQ(frame.type, MessageType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, ByteAtATimeDelivery) {
  const std::string payload = PayloadOf(11);
  const std::string wire = EncodeFrame(MessageType::kAdapt, payload);
  FrameReader reader;
  Frame frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    reader.Append(&wire[i], 1);
    ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kNeedMore)
        << "frame completed early at byte " << i;
  }
  reader.Append(&wire[wire.size() - 1], 1);
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  EXPECT_EQ(frame.type, MessageType::kAdapt);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, MultipleFramesInOneAppend) {
  const std::string wire = EncodeFrame(MessageType::kPing, "") +
                           EncodeFrame(MessageType::kGetMetrics, "") +
                           EncodeFrame(MessageType::kQuerySession, "abc");
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  EXPECT_EQ(frame.type, MessageType::kPing);
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  EXPECT_EQ(frame.type, MessageType::kGetMetrics);
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  EXPECT_EQ(frame.type, MessageType::kQuerySession);
  EXPECT_EQ(frame.payload, "abc");
  EXPECT_EQ(reader.Next(&frame), FrameReader::ReadResult::kNeedMore);
}

// --- protocol errors --------------------------------------------------------

TEST(FrameTest, BadMagicPoisonsReader) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  wire[0] = 'X';
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kError);
  EXPECT_FALSE(reader.error().ok());

  // Poisoned: even a pristine follow-up frame is rejected.
  const std::string good = EncodeFrame(MessageType::kPing, "");
  reader.Append(good.data(), good.size());
  EXPECT_EQ(reader.Next(&frame), FrameReader::ReadResult::kError);
}

TEST(FrameTest, UnsupportedVersionIsError) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  wire[4] = 2;  // version LE low byte
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kError);
  EXPECT_NE(reader.error().message().find("version"), std::string::npos);
}

TEST(FrameTest, UnknownMessageTypeIsError) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  wire[6] = 99;  // type LE low byte: not a defined MessageType
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::ReadResult::kError);
}

TEST(FrameTest, OversizedPayloadLengthIsErrorBeforeBodyArrives) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  FrameReader reader;
  // Header alone is enough to reject — no 64 MiB allocation happens.
  reader.Append(wire.data(), kFrameHeaderBytes);
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kError);
  EXPECT_FALSE(reader.error().ok());
}

TEST(FrameTest, MaxPayloadBoundIsInclusive) {
  // A header announcing exactly kMaxPayloadBytes is legal (kNeedMore until
  // the body arrives), one byte more is not.
  std::string header = EncodeFrame(MessageType::kPing, "");
  uint32_t len = kMaxPayloadBytes;
  std::memcpy(&header[8], &len, sizeof(len));
  FrameReader ok_reader;
  ok_reader.Append(header.data(), kFrameHeaderBytes);
  Frame frame;
  EXPECT_EQ(ok_reader.Next(&frame), FrameReader::ReadResult::kNeedMore);
}

// --- enum names -------------------------------------------------------------

TEST(NamesTest, MessageTypeNames) {
  EXPECT_STREQ(MessageTypeName(MessageType::kCreateSession), "create_session");
  EXPECT_STREQ(MessageTypeName(MessageType::kPongResponse), "pong_response");
  EXPECT_STREQ(MessageTypeName(static_cast<MessageType>(999)), "unknown");
}

TEST(NamesTest, WireErrorNames) {
  EXPECT_STREQ(WireErrorName(WireError::kBudgetExceeded), "budget_exceeded");
  EXPECT_STREQ(WireErrorName(static_cast<WireError>(999)), "unknown");
}

TEST(NamesTest, KnownMessageTypes) {
  EXPECT_TRUE(IsKnownMessageType(1));
  EXPECT_TRUE(IsKnownMessageType(10));
  EXPECT_TRUE(IsKnownMessageType(11));   // kInspectSession
  EXPECT_TRUE(IsKnownMessageType(128));
  EXPECT_TRUE(IsKnownMessageType(133));
  EXPECT_TRUE(IsKnownMessageType(134));  // kSessionTelemetryResponse
  EXPECT_FALSE(IsKnownMessageType(0));
  EXPECT_FALSE(IsKnownMessageType(12));
  EXPECT_FALSE(IsKnownMessageType(127));
  EXPECT_FALSE(IsKnownMessageType(135));
}

// --- traced frames ----------------------------------------------------------

TEST(TracedFrameTest, PrefixRoundTripsAndIsStripped) {
  const std::string payload = "user";
  const std::string wire =
      EncodeTracedFrame(MessageType::kQuerySession, payload,
                        /*trace_id=*/0x1122334455667788ull,
                        /*span_id=*/0x99AABBCCDDEEFF00ull);
  // On the wire: type field carries the flag, length covers prefix+payload.
  uint16_t wire_type = 0;
  std::memcpy(&wire_type, wire.data() + 6, sizeof(wire_type));
  EXPECT_EQ(wire_type & kTracedFrameBit, kTracedFrameBit);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 16 + payload.size());

  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  // The reader strips the prefix: the payload is byte-identical to an
  // untraced frame's and the context surfaces in dedicated fields.
  EXPECT_EQ(frame.type, MessageType::kQuerySession);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(frame.trace_id, 0x1122334455667788ull);
  EXPECT_EQ(frame.span_id, 0x99AABBCCDDEEFF00ull);
}

TEST(TracedFrameTest, ZeroTraceIdEncodesUntraced) {
  // Trace id 0 means "no context" — the encoder falls back to a plain
  // frame rather than shipping a meaningless prefix.
  const std::string wire =
      EncodeTracedFrame(MessageType::kPing, "", /*trace_id=*/0,
                        /*span_id=*/7);
  EXPECT_EQ(wire, EncodeFrame(MessageType::kPing, ""));
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kFrame);
  EXPECT_EQ(frame.trace_id, 0u);
  EXPECT_EQ(frame.span_id, 0u);
}

TEST(TracedFrameTest, TracedFrameShorterThanPrefixIsProtocolError) {
  std::string wire = EncodeFrame(MessageType::kPing, "tiny");
  uint16_t type = 0;
  std::memcpy(&type, wire.data() + 6, sizeof(type));
  type |= kTracedFrameBit;
  std::memcpy(&wire[6], &type, sizeof(type));
  FrameReader reader;
  reader.Append(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::ReadResult::kError);
  EXPECT_FALSE(reader.error().ok());
}

TEST(TracedFrameTest, UnknownRealTypeUnderFlagIsError) {
  // The flag does not smuggle unknown message types past validation.
  const std::string wire =
      EncodeTracedFrame(MessageType::kPing, "", /*trace_id=*/5,
                        /*span_id=*/6);
  std::string bad = wire;
  bad[6] = 99;  // low byte of type: 99 | 0x8000 after the flag byte
  FrameReader reader;
  reader.Append(bad.data(), bad.size());
  Frame frame;
  EXPECT_EQ(reader.Next(&frame), FrameReader::ReadResult::kError);
}

// --- payload primitives -----------------------------------------------------

TEST(PayloadTest, AllPrimitivesRoundTrip) {
  PayloadWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutDouble(-0.1);
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutString("hello");
  w.PutString("");

  PayloadReader r(w.bytes());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d1 = 0, d2 = 0;
  std::string s1, s2;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetDouble(&d1));
  ASSERT_TRUE(r.GetDouble(&d2));
  ASSERT_TRUE(r.GetString(&s1));
  ASSERT_TRUE(r.GetString(&s2));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(d1, -0.1);  // bit-pattern transport: exact
  EXPECT_EQ(d2, std::numeric_limits<double>::infinity());
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(PayloadTest, DoubleBitPatternSurvivesExactly) {
  // The value 0.1 has no finite binary expansion; text formatting loses
  // bits, the wire encoding must not.
  PayloadWriter w;
  const double x = 0.1;
  w.PutDouble(x);
  PayloadReader r(w.bytes());
  double y = 0;
  ASSERT_TRUE(r.GetDouble(&y));
  EXPECT_EQ(std::memcmp(&x, &y, sizeof(x)), 0);
}

TEST(PayloadTest, UnderrunReturnsFalseWithoutAdvancing) {
  PayloadWriter w;
  w.PutU16(7);
  PayloadReader r(w.bytes());
  uint32_t u32 = 0;
  EXPECT_FALSE(r.GetU32(&u32));  // only 2 bytes buffered
  EXPECT_EQ(r.remaining(), 2u);  // position unchanged
  uint16_t u16 = 0;
  ASSERT_TRUE(r.GetU16(&u16));
  EXPECT_EQ(u16, 7);
}

TEST(PayloadTest, TruncatedStringRestoresPosition) {
  // Length prefix says 100 bytes but only 3 follow.
  PayloadWriter w;
  w.PutU32(100);
  PayloadReader r(w.bytes() + "abc");
  std::string s;
  EXPECT_FALSE(r.GetString(&s));
  // The u32 length is restored too, so the caller can re-read it.
  EXPECT_EQ(r.remaining(), 7u);
  uint32_t len = 0;
  ASSERT_TRUE(r.GetU32(&len));
  EXPECT_EQ(len, 100u);
}

TEST(PayloadTest, AtEndDetectsTrailingGarbage) {
  PayloadWriter w;
  w.PutU8(1);
  w.PutU8(2);
  PayloadReader r(w.bytes());
  uint8_t v = 0;
  ASSERT_TRUE(r.GetU8(&v));
  EXPECT_FALSE(r.AtEnd());
  ASSERT_TRUE(r.GetU8(&v));
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace tasfar::serve
