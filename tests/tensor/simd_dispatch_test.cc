// Backend-dispatch behaviour of the float32 kernel subsystem
// (src/tensor/simd/dispatch.h): TASFAR_KERNEL_BACKEND parsing and
// override semantics, clean failure on unknown or unavailable values,
// forced-scalar operation, and the compute-mode opt-in contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/simd/cpu_features.h"
#include "tensor/simd/dispatch.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace tasfar {
namespace {

using simd::BackendAvailable;
using simd::BackendName;
using simd::ComputeMode;
using simd::DispatchableBackends;
using simd::KernelBackend;
using simd::Kernels;
using simd::KernelsFor;
using simd::ScopedKernelConfig;

TEST(SimdDispatchTest, ParseAcceptsEveryDocumentedSpelling) {
  KernelBackend b = KernelBackend::kAvx2;
  EXPECT_TRUE(simd::internal::ParseBackendName("scalar", &b));
  EXPECT_EQ(b, KernelBackend::kScalar);
  EXPECT_TRUE(simd::internal::ParseBackendName("avx2", &b));
  EXPECT_EQ(b, KernelBackend::kAvx2);
  EXPECT_TRUE(simd::internal::ParseBackendName("neon", &b));
  EXPECT_EQ(b, KernelBackend::kNeon);
  EXPECT_TRUE(simd::internal::ParseBackendName("double", &b));
  EXPECT_EQ(b, KernelBackend::kDouble);
}

TEST(SimdDispatchTest, ParseRejectsUnknownValues) {
  KernelBackend b = KernelBackend::kScalar;
  EXPECT_FALSE(simd::internal::ParseBackendName("turbo", &b));
  EXPECT_FALSE(simd::internal::ParseBackendName("", &b));
  EXPECT_FALSE(simd::internal::ParseBackendName("AVX2", &b));  // Case matters.
  EXPECT_FALSE(simd::internal::ParseBackendName("scalar ", &b));
}

TEST(SimdDispatchDeathTest, UnknownEnvValueDiesWithCleanError) {
  EXPECT_DEATH(simd::internal::ApplyEnvOverride("turbo"),
               "TASFAR_KERNEL_BACKEND");
}

TEST(SimdDispatchDeathTest, UnavailableBackendDiesWithCleanError) {
  // Exactly one of avx2/neon is impossible per architecture, and on
  // non-AVX2 x86 machines both are.
  const KernelBackend unavailable = simd::CpuHasNeon()
                                        ? KernelBackend::kAvx2
                                        : KernelBackend::kNeon;
  if (BackendAvailable(unavailable)) GTEST_SKIP();
  EXPECT_DEATH(
      simd::internal::ApplyEnvOverride(BackendName(unavailable)),
      "not[ \n]+available");
}

TEST(SimdDispatchTest, EnvOverrideScalarForcesScalarAndEnablesF32) {
  ScopedKernelConfig guard;
  simd::internal::ApplyEnvOverride("scalar");
  EXPECT_EQ(simd::SelectedBackend(), KernelBackend::kScalar);
  EXPECT_EQ(std::string("scalar"), Kernels().name);
  EXPECT_TRUE(simd::ComputeModeIsF32());
}

TEST(SimdDispatchTest, EnvOverrideDoubleDisablesF32WithoutTouchingBackend) {
  ScopedKernelConfig guard;
  simd::SetComputeMode(ComputeMode::kF32);
  const KernelBackend before = simd::SelectedBackend();
  simd::internal::ApplyEnvOverride("double");
  EXPECT_EQ(simd::SelectedBackend(), before);
  EXPECT_FALSE(simd::ComputeModeIsF32());
}

TEST(SimdDispatchTest, ComputeModeDefaultsToDoubleUnlessEnvOptsIn) {
  // The test binary runs without TASFAR_KERNEL_BACKEND (or CI sets it
  // explicitly per leg); either way the mode must match the env, keeping
  // f32 strictly opt-in.
  const char* env = std::getenv("TASFAR_KERNEL_BACKEND");
  const bool env_opts_in =
      env != nullptr && env[0] != '\0' && std::string(env) != "double";
  ScopedKernelConfig guard;
  EXPECT_EQ(simd::ComputeModeIsF32(), env_opts_in);
}

TEST(SimdDispatchTest, DispatchableBackendsStartWithScalar) {
  const std::vector<KernelBackend> backends = DispatchableBackends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), KernelBackend::kScalar);
  for (KernelBackend b : backends) {
    EXPECT_NE(b, KernelBackend::kDouble);
    EXPECT_TRUE(BackendAvailable(b));
    EXPECT_NE(KernelsFor(b), nullptr);
  }
}

TEST(SimdDispatchTest, Avx2ListedExactlyWhenCpuAndBuildSupportIt) {
  const std::vector<KernelBackend> backends = DispatchableBackends();
  const bool listed = std::count(backends.begin(), backends.end(),
                                 KernelBackend::kAvx2) > 0;
  EXPECT_EQ(listed, BackendAvailable(KernelBackend::kAvx2));
  // KernelsFor must agree with BackendAvailable for the vector backends.
  EXPECT_EQ(KernelsFor(KernelBackend::kAvx2) != nullptr,
            BackendAvailable(KernelBackend::kAvx2));
}

TEST(SimdDispatchTest, KernelsForDoubleIsNull) {
  EXPECT_EQ(KernelsFor(KernelBackend::kDouble), nullptr);
}

TEST(SimdDispatchDeathTest, SetKernelBackendRejectsDouble) {
  EXPECT_DEATH(simd::SetKernelBackend(KernelBackend::kDouble),
               "compute mode");
}

TEST(SimdDispatchTest, ScopedConfigRestoresBackendAndMode) {
  const KernelBackend before_backend = simd::SelectedBackend();
  const ComputeMode before_mode = simd::GetComputeMode();
  {
    ScopedKernelConfig guard;
    simd::SetKernelBackend(KernelBackend::kScalar);
    simd::SetComputeMode(ComputeMode::kF32);
  }
  EXPECT_EQ(simd::SelectedBackend(), before_backend);
  EXPECT_EQ(simd::GetComputeMode(), before_mode);
}

// Forcing the scalar backend must produce the same bytes as whichever
// vector backend cpuid picked — this is the test that keeps the full f32
// tier meaningful on CI machines without AVX2.
TEST(SimdDispatchTest, ForcedScalarMatchesSelectedBackendBitForBit) {
  Rng rng(17);
  Tensor a = Tensor::RandomNormal({33, 29}, &rng);
  Tensor b = Tensor::RandomNormal({29, 21}, &rng);
  Tensor out_native({33, 21});
  Tensor out_scalar({33, 21});
  {
    ScopedKernelConfig guard;
    simd::MatMulF32Into(a, b, &out_native);
    simd::SetKernelBackend(KernelBackend::kScalar);
    simd::MatMulF32Into(a, b, &out_scalar);
  }
  EXPECT_EQ(0, std::memcmp(out_native.data(), out_scalar.data(),
                           out_native.size() * sizeof(double)));
}

TEST(SimdDispatchTest, MatMulF32IntoMatchesDoubleWithinFloatPrecision) {
  Rng rng(23);
  Tensor a = Tensor::RandomNormal({19, 31}, &rng);
  Tensor b = Tensor::RandomNormal({31, 13}, &rng);
  Tensor f32({19, 13});
  simd::MatMulF32Into(a, b, &f32);
  Tensor f64({19, 13});
  MatMulInto(a, b, &f64);
  for (size_t i = 0; i < f32.size(); ++i) {
    // Inputs are O(1) normals, k = 31: generous absolute bound.
    EXPECT_NEAR(f32[i], f64[i], 1e-4) << "at " << i;
  }
}

}  // namespace
}  // namespace tasfar
