#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace tasfar {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TensorTest, ShapeConstructorZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(TensorTest, DataConstructorKeepsValues) {
  Tensor t({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(t.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(1, 1), 4.0);
}

TEST(TensorTest, FactoriesFillCorrectly) {
  EXPECT_DOUBLE_EQ(Tensor::Ones({3})[1], 1.0);
  EXPECT_DOUBLE_EQ(Tensor::Full({2}, 7.5)[0], 7.5);
  Tensor v = Tensor::FromVector({1.0, 2.0});
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(TensorTest, FromRows) {
  Tensor t = Tensor::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
}

TEST(TensorTest, RandomNormalStatistics) {
  Rng rng(5);
  Tensor t = Tensor::RandomNormal({100, 100}, &rng, 2.0, 3.0);
  EXPECT_NEAR(t.Mean(), 2.0, 0.1);
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(5);
  Tensor t = Tensor::RandomUniform({1000}, &rng, -1.0, 1.0);
  EXPECT_GE(t.Min(), -1.0);
  EXPECT_LT(t.Max(), 1.0);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_DOUBLE_EQ(r.At(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 2.0);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2, 3]");
}

TEST(TensorTest, Rank3And4Accessors) {
  Tensor t3({2, 3, 4});
  t3.At(1, 2, 3) = 9.0;
  EXPECT_DOUBLE_EQ(t3[1 * 12 + 2 * 4 + 3], 9.0);
  Tensor t4({2, 2, 2, 2});
  t4.At(1, 0, 1, 0) = 5.0;
  EXPECT_DOUBLE_EQ(t4[8 + 0 + 2 + 0], 5.0);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a({2}, {1.0, 2.0});
  Tensor b({2}, {3.0, 5.0});
  EXPECT_DOUBLE_EQ((a + b)[1], 7.0);
  EXPECT_DOUBLE_EQ((b - a)[0], 2.0);
  EXPECT_DOUBLE_EQ((a * b)[1], 10.0);
  EXPECT_DOUBLE_EQ((b / a)[1], 2.5);
}

TEST(TensorTest, CompoundAssignment) {
  Tensor a({2}, {1.0, 2.0});
  a += Tensor({2}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  a -= Tensor({2}, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(a[1], 2.5);
  a *= Tensor({2}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(a[0], 3.0);
}

TEST(TensorTest, ScalarOps) {
  Tensor a({2}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ((a + 1.0)[0], 2.0);
  EXPECT_DOUBLE_EQ((a - 1.0)[1], 1.0);
  EXPECT_DOUBLE_EQ((a * 3.0)[1], 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0)[0], 0.5);
  EXPECT_DOUBLE_EQ((2.0 * a)[1], 4.0);
  EXPECT_DOUBLE_EQ((-a)[0], -1.0);
}

TEST(TensorTest, MapAndFill) {
  Tensor a({3}, {1.0, 4.0, 9.0});
  Tensor s = a.Map([](double x) { return std::sqrt(x); });
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  a.Fill(2.0);
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  a.MapInPlace([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(a[1], 4.0);
}

TEST(TensorTest, MatMulKnownResult) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(TensorTest, MatMulIdentity) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor id({2, 2}, {1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(a.MatMul(id).MaxAbsDiff(a), 0.0);
}

TEST(TensorTest, Transposed) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = a.Transposed();
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t.Transposed().MaxAbsDiff(a), 0.0);
}

TEST(TensorTest, AddRowBroadcast) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor row({2}, {10.0, 20.0});
  Tensor out = a.AddRowBroadcast(row);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 13.0);
}

TEST(TensorTest, RowAndSetRow) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = a.Row(1);
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_DOUBLE_EQ(r[2], 6.0);
  a.SetRow(0, Tensor({3}, {9.0, 9.0, 9.0}));
  EXPECT_DOUBLE_EQ(a.At(0, 2), 9.0);
}

TEST(TensorTest, StackRows) {
  Tensor s = Tensor::StackRows(
      {Tensor({2}, {1.0, 2.0}), Tensor({2}, {3.0, 4.0})});
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 3.0);
}

TEST(TensorTest, GatherRows) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = a.GatherRows({2, 0});
  EXPECT_DOUBLE_EQ(g.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.At(1, 1), 2.0);
}

TEST(TensorTest, GatherRowsAllowsDuplicates) {
  Tensor a({2, 1}, {1.0, 2.0});
  Tensor g = a.GatherRows({1, 1, 1});
  EXPECT_EQ(g.dim(0), 3u);
  EXPECT_DOUBLE_EQ(g.At(2, 0), 2.0);
}

TEST(TensorTest, Reductions) {
  Tensor a({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 4.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 30.0);
}

TEST(TensorTest, ColMeanAndColStd) {
  Tensor a({2, 2}, {1.0, 10.0, 3.0, 30.0});
  Tensor m = a.ColMean();
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 20.0);
  Tensor s = a.ColStd();
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
}

TEST(TensorTest, AllFinite) {
  Tensor a({2}, {1.0, 2.0});
  EXPECT_TRUE(a.AllFinite());
  a[0] = std::nan("");
  EXPECT_FALSE(a.AllFinite());
  a[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(a.AllFinite());
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a({2}, {1.0, 2.0});
  Tensor b({2}, {1.5, 1.0});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(TensorDeathTest, ShapeMismatchAborts) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_DEATH(a + b, "shape mismatch");
}

TEST(TensorDeathTest, MatMulDimensionMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_DEATH(a.MatMul(b), "inner dimensions");
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(a.Reshape({4}), "preserve element count");
}

}  // namespace
}  // namespace tasfar
