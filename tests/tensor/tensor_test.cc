#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace tasfar {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TensorTest, ShapeConstructorZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.size(), 6u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(TensorTest, DataConstructorKeepsValues) {
  Tensor t({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(t.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(1, 1), 4.0);
}

TEST(TensorTest, FactoriesFillCorrectly) {
  EXPECT_DOUBLE_EQ(Tensor::Ones({3})[1], 1.0);
  EXPECT_DOUBLE_EQ(Tensor::Full({2}, 7.5)[0], 7.5);
  Tensor v = Tensor::FromVector({1.0, 2.0});
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(TensorTest, FromRows) {
  Tensor t = Tensor::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
}

TEST(TensorTest, RandomNormalStatistics) {
  Rng rng(5);
  Tensor t = Tensor::RandomNormal({100, 100}, &rng, 2.0, 3.0);
  EXPECT_NEAR(t.Mean(), 2.0, 0.1);
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(5);
  Tensor t = Tensor::RandomUniform({1000}, &rng, -1.0, 1.0);
  EXPECT_GE(t.Min(), -1.0);
  EXPECT_LT(t.Max(), 1.0);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_DOUBLE_EQ(r.At(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 2.0);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2, 3]");
}

TEST(TensorTest, Rank3And4Accessors) {
  Tensor t3({2, 3, 4});
  t3.At(1, 2, 3) = 9.0;
  EXPECT_DOUBLE_EQ(t3[1 * 12 + 2 * 4 + 3], 9.0);
  Tensor t4({2, 2, 2, 2});
  t4.At(1, 0, 1, 0) = 5.0;
  EXPECT_DOUBLE_EQ(t4[8 + 0 + 2 + 0], 5.0);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a({2}, {1.0, 2.0});
  Tensor b({2}, {3.0, 5.0});
  EXPECT_DOUBLE_EQ((a + b)[1], 7.0);
  EXPECT_DOUBLE_EQ((b - a)[0], 2.0);
  EXPECT_DOUBLE_EQ((a * b)[1], 10.0);
  EXPECT_DOUBLE_EQ((b / a)[1], 2.5);
}

TEST(TensorTest, CompoundAssignment) {
  Tensor a({2}, {1.0, 2.0});
  a += Tensor({2}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  a -= Tensor({2}, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(a[1], 2.5);
  a *= Tensor({2}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(a[0], 3.0);
}

TEST(TensorTest, ScalarOps) {
  Tensor a({2}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ((a + 1.0)[0], 2.0);
  EXPECT_DOUBLE_EQ((a - 1.0)[1], 1.0);
  EXPECT_DOUBLE_EQ((a * 3.0)[1], 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0)[0], 0.5);
  EXPECT_DOUBLE_EQ((2.0 * a)[1], 4.0);
  EXPECT_DOUBLE_EQ((-a)[0], -1.0);
}

TEST(TensorTest, MapAndFill) {
  Tensor a({3}, {1.0, 4.0, 9.0});
  Tensor s = a.Map([](double x) { return std::sqrt(x); });
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  a.Fill(2.0);
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  a.MapInPlace([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(a[1], 4.0);
}

TEST(TensorTest, MatMulKnownResult) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(TensorTest, MatMulIdentity) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor id({2, 2}, {1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(a.MatMul(id).MaxAbsDiff(a), 0.0);
}

// Naive triple-loop reference for validating the blocked MatMul kernel.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += a.At(i, p) * b.At(p, j);
      c.At(i, j) = acc;
    }
  }
  return c;
}

TEST(TensorTest, MatMulMatchesNaiveOnAwkwardShapes) {
  // Shapes chosen to leave partial blocks in every blocked dimension
  // (block sizes are 64 and 128) and to cross the parallel threshold.
  Rng rng(77);
  const size_t shapes[][3] = {{1, 1, 1},   {3, 70, 5},    {65, 129, 67},
                              {128, 64, 128}, {40, 200, 130}, {97, 3, 257}};
  for (const auto& s : shapes) {
    Tensor a = Tensor::RandomNormal({s[0], s[1]}, &rng);
    Tensor b = Tensor::RandomNormal({s[1], s[2]}, &rng);
    EXPECT_LT(a.MatMul(b).MaxAbsDiff(NaiveMatMul(a, b)),
              1e-9 * static_cast<double>(s[1]))
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(TensorTest, MatMulBitIdenticalAcrossThreadCounts) {
  Rng rng(78);
  Tensor a = Tensor::RandomNormal({150, 90}, &rng);
  Tensor b = Tensor::RandomNormal({90, 170}, &rng);
  SetNumThreads(1);
  Tensor serial = a.MatMul(b);
  for (size_t threads : {2u, 5u, 8u}) {
    SetNumThreads(threads);
    EXPECT_DOUBLE_EQ(a.MatMul(b).MaxAbsDiff(serial), 0.0) << threads;
  }
  SetNumThreads(0);
}

TEST(TensorTest, MatMulZeroSizeDims) {
  Tensor a({0, 4});
  Tensor b({4, 3});
  Tensor c = a.MatMul(b);
  EXPECT_EQ(c.dim(0), 0u);
  EXPECT_EQ(c.dim(1), 3u);
  Tensor d({3, 4});
  Tensor e({4, 0});
  EXPECT_EQ(d.MatMul(e).dim(1), 0u);
}

TEST(TensorTest, Transposed) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = a.Transposed();
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t.Transposed().MaxAbsDiff(a), 0.0);
}

TEST(TensorTest, AddRowBroadcast) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor row({2}, {10.0, 20.0});
  Tensor out = a.AddRowBroadcast(row);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 13.0);
}

TEST(TensorTest, RowAndSetRow) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = a.Row(1);
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_DOUBLE_EQ(r[2], 6.0);
  a.SetRow(0, Tensor({3}, {9.0, 9.0, 9.0}));
  EXPECT_DOUBLE_EQ(a.At(0, 2), 9.0);
}

TEST(TensorTest, StackRows) {
  Tensor s = Tensor::StackRows(
      {Tensor({2}, {1.0, 2.0}), Tensor({2}, {3.0, 4.0})});
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 3.0);
}

TEST(TensorTest, GatherRows) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = a.GatherRows({2, 0});
  EXPECT_DOUBLE_EQ(g.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.At(1, 1), 2.0);
}

TEST(TensorTest, GatherRowsAllowsDuplicates) {
  Tensor a({2, 1}, {1.0, 2.0});
  Tensor g = a.GatherRows({1, 1, 1});
  EXPECT_EQ(g.dim(0), 3u);
  EXPECT_DOUBLE_EQ(g.At(2, 0), 2.0);
}

TEST(TensorTest, Reductions) {
  Tensor a({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 4.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 30.0);
}

TEST(TensorTest, ColMeanAndColStd) {
  Tensor a({2, 2}, {1.0, 10.0, 3.0, 30.0});
  Tensor m = a.ColMean();
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 20.0);
  Tensor s = a.ColStd();
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
}

TEST(TensorTest, AllFinite) {
  Tensor a({2}, {1.0, 2.0});
  EXPECT_TRUE(a.AllFinite());
  a[0] = std::nan("");
  EXPECT_FALSE(a.AllFinite());
  a[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(a.AllFinite());
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a({2}, {1.0, 2.0});
  Tensor b({2}, {1.5, 1.0});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
}

TEST(TensorDeathTest, ShapeMismatchAborts) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_DEATH(a + b, "shape mismatch");
}

TEST(TensorDeathTest, MatMulDimensionMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_DEATH(a.MatMul(b), "inner dimensions");
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(a.Reshape({4}), "preserve element count");
}

}  // namespace
}  // namespace tasfar
