// Property-based checks of the float32 kernel backends
// (src/tensor/simd/): every dispatchable backend must agree with the
// scalar f32 reference BIT FOR BIT on randomized shapes — including 0×N,
// 1×1, and non-multiple-of-vector-width tails — and with the double
// reference within the budgets documented in docs/MEMORY.md §"Float32
// compute mode" (the budget assertions themselves live in
// tests/golden_float/golden_float_kernel_test.cc; here we check a
// rigorous elementwise bound to catch shape-dependent bugs).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "tensor/simd/dispatch.h"
#include "tensor/simd/kernels.h"
#include "util/rng.h"

namespace tasfar {
namespace {

using simd::DispatchableBackends;
using simd::F32Kernels;
using simd::KernelBackend;
using simd::KernelsFor;
using simd::ScalarKernels;

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
  return v;
}

using Shape = std::tuple<size_t, size_t, size_t>;  // m, k, n.

class SimdMatMulPropertyTest : public ::testing::TestWithParam<Shape> {};

TEST_P(SimdMatMulPropertyTest, AllBackendsBitIdenticalToScalar) {
  const auto [m, k, n] = GetParam();
  const std::vector<float> a =
      RandomVec(m * k, static_cast<uint32_t>(m * 131 + k * 17 + n));
  const std::vector<float> b =
      RandomVec(k * n, static_cast<uint32_t>(m * 7 + k * 311 + n + 1));
  std::vector<float> ref(m * n, 0.5f);  // Nonzero: matmul accumulates.
  ScalarKernels().matmul(a.data(), b.data(), ref.data(), m, k, n);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(m * n, 0.5f);
    kernels->matmul(a.data(), b.data(), out.data(), m, k, n);
    EXPECT_EQ(0, std::memcmp(ref.data(), out.data(), m * n * sizeof(float)))
        << "backend " << kernels->name << " diverges from scalar at shape "
        << m << "x" << k << "x" << n;
  }
}

TEST_P(SimdMatMulPropertyTest, WithinRigorousBoundOfDoubleReference) {
  const auto [m, k, n] = GetParam();
  const std::vector<float> a =
      RandomVec(m * k, static_cast<uint32_t>(m * 13 + k * 57 + n + 3));
  const std::vector<float> b =
      RandomVec(k * n, static_cast<uint32_t>(m + k * 5 + n * 231 + 4));
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(m * n, 0.0f);
    kernels->matmul(a.data(), b.data(), out.data(), m, k, n);
    // Forward error of a length-k fma dot product: at most one rounding
    // per step, so |err| <= k * eps32 * sum(|a_p * b_p|); the +4 absorbs
    // the final conversions. Inputs here are already float, so there is
    // no input-narrowing term.
    const double eps32 = 0x1.0p-24;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double exact = 0.0, abs_sum = 0.0;
        for (size_t p = 0; p < k; ++p) {
          const double prod = static_cast<double>(a[i * k + p]) *
                              static_cast<double>(b[p * n + j]);
          exact += prod;
          abs_sum += std::fabs(prod);
        }
        const double bound = static_cast<double>(k + 4) * eps32 * abs_sum;
        EXPECT_NEAR(static_cast<double>(out[i * n + j]), exact, bound)
            << "backend " << kernels->name << " at (" << i << "," << j
            << ") of " << m << "x" << k << "x" << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimdMatMulPropertyTest,
    ::testing::Values(
        // Degenerate: empty result / empty inner dimension (c untouched).
        Shape{0, 5, 7}, Shape{5, 7, 0}, Shape{4, 0, 6}, Shape{1, 1, 1},
        // Tails: every n mod 16 class around the AVX2 tile widths, odd
        // rows around the 4-row tile, and awkward primes.
        Shape{1, 3, 2}, Shape{2, 8, 8}, Shape{3, 5, 9}, Shape{4, 6, 15},
        Shape{5, 9, 16}, Shape{6, 4, 17}, Shape{7, 11, 23}, Shape{8, 16, 24},
        Shape{9, 13, 31}, Shape{11, 7, 33}, Shape{13, 21, 48},
        Shape{16, 33, 40}, Shape{33, 17, 65}, Shape{64, 8, 48},
        Shape{64, 48, 24}, Shape{64, 24, 1}));

class SimdElementwisePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SimdElementwisePropertyTest, AllBackendsBitIdenticalToScalar) {
  const size_t n = GetParam();
  const std::vector<float> a = RandomVec(n, static_cast<uint32_t>(n * 3 + 1));
  const std::vector<float> b = RandomVec(n, static_cast<uint32_t>(n * 5 + 2));
  const F32Kernels& ref = ScalarKernels();
  std::vector<float> r_add(n), r_mul(n), r_relu(n), r_tanh(n), r_sig(n);
  ref.add(a.data(), b.data(), r_add.data(), n);
  ref.mul(a.data(), b.data(), r_mul.data(), n);
  ref.relu(a.data(), r_relu.data(), n);
  ref.tanh(a.data(), r_tanh.data(), n);
  ref.sigmoid(a.data(), r_sig.data(), n);
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> out(n);
    kernels->add(a.data(), b.data(), out.data(), n);
    EXPECT_EQ(0, std::memcmp(r_add.data(), out.data(), n * sizeof(float)))
        << "add/" << kernels->name;
    kernels->mul(a.data(), b.data(), out.data(), n);
    EXPECT_EQ(0, std::memcmp(r_mul.data(), out.data(), n * sizeof(float)))
        << "mul/" << kernels->name;
    kernels->relu(a.data(), out.data(), n);
    EXPECT_EQ(0, std::memcmp(r_relu.data(), out.data(), n * sizeof(float)))
        << "relu/" << kernels->name;
    kernels->tanh(a.data(), out.data(), n);
    EXPECT_EQ(0, std::memcmp(r_tanh.data(), out.data(), n * sizeof(float)))
        << "tanh/" << kernels->name;
    kernels->sigmoid(a.data(), out.data(), n);
    EXPECT_EQ(0, std::memcmp(r_sig.data(), out.data(), n * sizeof(float)))
        << "sigmoid/" << kernels->name;
  }
}

TEST_P(SimdElementwisePropertyTest, AliasedOutputAllowed) {
  const size_t n = GetParam();
  const std::vector<float> a = RandomVec(n, static_cast<uint32_t>(n + 11));
  const std::vector<float> b = RandomVec(n, static_cast<uint32_t>(n + 12));
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> expect(n), inplace = a;
    kernels->add(a.data(), b.data(), expect.data(), n);
    kernels->add(inplace.data(), b.data(), inplace.data(), n);
    EXPECT_EQ(0,
              std::memcmp(expect.data(), inplace.data(), n * sizeof(float)))
        << "aliased add/" << kernels->name;
    inplace = a;
    kernels->relu(a.data(), expect.data(), n);
    kernels->relu(inplace.data(), inplace.data(), n);
    EXPECT_EQ(0,
              std::memcmp(expect.data(), inplace.data(), n * sizeof(float)))
        << "aliased relu/" << kernels->name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimdElementwisePropertyTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                           17, 31, 32, 33, 63, 64, 65, 100,
                                           1000));

// Edge semantics pinned by kernels.h: relu maps both -0.0f and NaN to
// +0.0f in every backend (the branchless vector forms decide this; the
// scalar reference matches them).
TEST(SimdReluEdgeTest, NegativeZeroAndNanMapToPositiveZero) {
  const float in[4] = {-0.0f, std::nanf(""), -1.5f, 2.5f};
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    float out[4];
    kernels->relu(in, out, 4);
    EXPECT_EQ(out[0], 0.0f) << kernels->name;
    EXPECT_FALSE(std::signbit(out[0]))
        << kernels->name << ": -0.0f must map to +0.0f";
    EXPECT_EQ(out[1], 0.0f) << kernels->name << ": NaN must map to +0";
    EXPECT_EQ(out[2], 0.0f) << kernels->name;
    EXPECT_EQ(out[3], 2.5f) << kernels->name;
  }
}

// k = 0 leaves c exactly as it was (the kernels only ever accumulate).
TEST(SimdMatMulEdgeTest, EmptyInnerDimensionLeavesCUntouched) {
  for (KernelBackend backend : DispatchableBackends()) {
    const F32Kernels* kernels = KernelsFor(backend);
    ASSERT_NE(kernels, nullptr);
    std::vector<float> c(6, 41.0f);
    std::vector<float> empty(1, 0.0f);  // Valid pointer, zero extent.
    kernels->matmul(empty.data(), empty.data(), c.data(), 2, 0, 3);
    for (float v : c) EXPECT_EQ(v, 41.0f) << kernels->name;
  }
}

}  // namespace
}  // namespace tasfar
