// Aliasing and memory-model semantics of the shared-buffer Tensor
// (docs/MEMORY.md): views share storage zero-copy, mutation detaches via
// copy-on-write, and the per-thread Workspace recycles buffers whose last
// tensor reference is gone. Each TEST runs in its own process, so the
// thread-local workspace pool starts empty in every workspace test.

#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "nn/dense.h"
#include "nn/sequential.h"
#include "tensor/buffer.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace tasfar {
namespace {

TEST(TensorAliasingTest, CopySharesBufferUntilWrite) {
  Tensor a = Tensor::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Tensor b = a;
  EXPECT_TRUE(a.SharesBufferWith(b));
  // Const reads must not detach (a non-const accessor would: overload
  // resolution on a mutable tensor picks the detaching overload).
  EXPECT_EQ(static_cast<const Tensor&>(b).At(1, 0), 3.0);
  EXPECT_TRUE(a.SharesBufferWith(b));

  b.At(0, 0) = 42.0;
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_EQ(a.At(0, 0), 1.0);
  EXPECT_EQ(b.At(0, 0), 42.0);
}

TEST(TensorAliasingTest, ReshapeIsZeroCopyView) {
  const Tensor t = Tensor::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Tensor r = t.Reshape({3, 2});
  EXPECT_TRUE(r.SharesBufferWith(t));
  EXPECT_EQ(r.data(), t.data());
  EXPECT_EQ(r.At(2, 1), 6.0);
}

TEST(TensorAliasingTest, SliceRowsIsOffsetViewOfParent) {
  const Tensor t =
      Tensor::FromRows({{0.0, 1.0}, {2.0, 3.0}, {4.0, 5.0}, {6.0, 7.0}});
  const Tensor s = t.SliceRows(1, 3);
  ASSERT_EQ(s.dim(0), 2u);
  ASSERT_EQ(s.dim(1), 2u);
  EXPECT_TRUE(s.SharesBufferWith(t));
  EXPECT_EQ(s.data(), t.data() + 2);
  EXPECT_EQ(s.At(0, 0), 2.0);
  EXPECT_EQ(s.At(1, 1), 5.0);
}

TEST(TensorAliasingTest, ViewWriteDetachesAndLeavesParentIntact) {
  Tensor t = Tensor::FromRows({{0.0, 1.0}, {2.0, 3.0}, {4.0, 5.0}});
  Tensor s = t.SliceRows(1, 2);
  s.At(0, 0) = 99.0;
  EXPECT_FALSE(s.SharesBufferWith(t));
  EXPECT_EQ(t.At(1, 0), 2.0);
  EXPECT_EQ(s.At(0, 0), 99.0);
}

TEST(TensorAliasingTest, ParentWriteDetachesAndLeavesViewIntact) {
  Tensor t = Tensor::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  const Tensor r = t.Reshape({4});
  t.At(0, 0) = -7.0;
  EXPECT_FALSE(t.SharesBufferWith(r));
  EXPECT_EQ(r[0], 1.0);
  EXPECT_EQ(t.At(0, 0), -7.0);
}

TEST(TensorAliasingTest, MoveTransfersBufferWithoutCopy) {
  Tensor a = Tensor::FromRows({{1.0, 2.0}});
  const double* p = a.data();
  Tensor b = std::move(a);
  EXPECT_EQ(static_cast<const Tensor&>(b).data(), p);
  EXPECT_EQ(a.size(), 0u);
}

TEST(TensorEdgeTest, FromRowsEmptyYieldsZeroByZero) {
  const Tensor t = Tensor::FromRows({});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 0u);
  EXPECT_EQ(t.dim(1), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TensorEdgeTest, FromRowsZeroWidthRows) {
  const Tensor t = Tensor::FromRows({{}, {}});
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TensorEdgeTest, ZeroSizeTensorsAndReshapes) {
  const Tensor empty;
  EXPECT_EQ(empty.rank(), 0u);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.data(), nullptr);

  const Tensor z({0, 3});
  EXPECT_EQ(z.size(), 0u);
  const Tensor zr = z.Reshape({3, 0});
  EXPECT_EQ(zr.dim(0), 3u);
  EXPECT_EQ(zr.size(), 0u);
  // An empty tensor reshapes to any zero-element shape.
  EXPECT_EQ(empty.Reshape({0, 5}).dim(1), 5u);
}

TEST(TensorEdgeDeathTest, ShapeProductOverflowAborts) {
  const size_t huge = static_cast<size_t>(-1);
  EXPECT_DEATH(Tensor({huge, huge}), "overflows size_t");
}

TEST(WorkspaceTest, ReusesDroppedBufferWithoutAllocating) {
  Workspace& ws = Workspace::ThreadLocal();
  const TensorAllocStats start = GetTensorAllocStats();
  const double* first = nullptr;
  {
    Tensor a = ws.NewTensor({17, 23});
    first = static_cast<const Tensor&>(a).data();
  }
  EXPECT_EQ(GetTensorAllocStats().alloc_count - start.alloc_count, 1u);

  Tensor b = ws.NewTensor({17, 23});
  EXPECT_EQ(static_cast<const Tensor&>(b).data(), first);
  const TensorAllocStats after = GetTensorAllocStats();
  EXPECT_EQ(after.alloc_count - start.alloc_count, 1u);
  EXPECT_EQ(after.workspace_reuses - start.workspace_reuses, 1u);
}

TEST(WorkspaceTest, LiveBuffersAreNeverHandedOutTwice) {
  Workspace& ws = Workspace::ThreadLocal();
  Tensor a = ws.NewTensor({8, 8});
  Tensor b = ws.NewTensor({8, 8});
  EXPECT_NE(static_cast<const Tensor&>(a).data(),
            static_cast<const Tensor&>(b).data());
  a.Fill(1.0);
  b.Fill(2.0);
  EXPECT_EQ(static_cast<const Tensor&>(a)[0], 1.0);
  EXPECT_EQ(static_cast<const Tensor&>(b)[0], 2.0);
}

TEST(WorkspaceTest, ZeroTensorClearsRecycledContents) {
  Workspace& ws = Workspace::ThreadLocal();
  {
    Tensor dirty = ws.NewTensor({5, 5});
    dirty.Fill(3.14);
  }
  const Tensor z = ws.ZeroTensor({5, 5});
  for (size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z[i], 0.0);
}

TEST(WorkspaceTest, EscapedCopyPinsTheBuffer) {
  Workspace& ws = Workspace::ThreadLocal();
  Tensor kept;
  const double* pinned = nullptr;
  {
    Tensor a = ws.NewTensor({4, 4});
    a.Fill(9.0);
    pinned = static_cast<const Tensor&>(a).data();
    kept = a;  // Shares the workspace buffer beyond `a`'s lifetime.
  }
  // The buffer still has a live tensor reference, so the pool must hand
  // out fresh storage instead of recycling it underneath `kept`.
  Tensor b = ws.NewTensor({4, 4});
  EXPECT_NE(static_cast<const Tensor&>(b).data(), pinned);
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(static_cast<const Tensor&>(kept)[i], 9.0);
  }
}

TEST(WorkspaceTest, ParamsStayStableAcrossWorkspaceReuse) {
  Sequential model;
  Rng rng(7);
  model.Add(std::make_unique<Dense>(4, 3, &rng));
  const std::vector<Tensor*> params = model.Params();
  std::vector<const double*> ptrs;
  for (Tensor* p : params) {
    ptrs.push_back(static_cast<const Tensor&>(*p).data());
  }

  // Forward/backward cycles churn through workspace buffers; parameter
  // storage must never be recycled or detached underneath the model.
  Tensor inputs = Tensor::RandomNormal({6, 4}, &rng);
  for (int step = 0; step < 5; ++step) {
    model.ZeroGrads();
    Tensor out = model.Forward(inputs, /*training=*/false);
    model.Backward(out);
    const std::vector<Tensor*> again = model.Params();
    ASSERT_EQ(again.size(), params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(again[i], params[i]);
      EXPECT_EQ(static_cast<const Tensor&>(*again[i]).data(), ptrs[i]);
    }
  }
}

}  // namespace
}  // namespace tasfar
