// Property-style checks of the tensor algebra against naive reference
// implementations and algebraic identities, across a sweep of shapes.

#include <gtest/gtest.h>

#include <tuple>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace tasfar {
namespace {

using Shape = std::tuple<size_t, size_t, size_t>;  // m, k, n.

class MatMulPropertyTest : public ::testing::TestWithParam<Shape> {};

TEST_P(MatMulPropertyTest, MatchesNaiveTripleLoop) {
  const auto m = std::get<0>(GetParam());
  const auto k = std::get<1>(GetParam());
  const auto n = std::get<2>(GetParam());
  Rng rng(m * 131 + k * 17 + n);
  Tensor a = Tensor::RandomNormal({m, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, n}, &rng);
  Tensor c = a.MatMul(b);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (size_t p = 0; p < k; ++p) ref += a.At(i, p) * b.At(p, j);
      EXPECT_NEAR(c.At(i, j), ref, 1e-10);
    }
  }
}

TEST_P(MatMulPropertyTest, TransposeIdentity) {
  // (A B)^T == B^T A^T.
  const auto m = std::get<0>(GetParam());
  const auto k = std::get<1>(GetParam());
  const auto n = std::get<2>(GetParam());
  Rng rng(m + k * 7 + n * 31);
  Tensor a = Tensor::RandomNormal({m, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, n}, &rng);
  Tensor left = a.MatMul(b).Transposed();
  Tensor right = b.Transposed().MatMul(a.Transposed());
  EXPECT_NEAR(left.MaxAbsDiff(right), 0.0, 1e-10);
}

TEST_P(MatMulPropertyTest, DistributesOverAddition) {
  // A (B + C) == A B + A C.
  const auto m = std::get<0>(GetParam());
  const auto k = std::get<1>(GetParam());
  const auto n = std::get<2>(GetParam());
  Rng rng(m * 3 + k + n * 11);
  Tensor a = Tensor::RandomNormal({m, k}, &rng);
  Tensor b = Tensor::RandomNormal({k, n}, &rng);
  Tensor c = Tensor::RandomNormal({k, n}, &rng);
  Tensor left = a.MatMul(b + c);
  Tensor right = a.MatMul(b) + a.MatMul(c);
  EXPECT_NEAR(left.MaxAbsDiff(right), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulPropertyTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 5, 3}, Shape{4, 1, 4},
                      Shape{3, 7, 2}, Shape{8, 8, 8}, Shape{2, 16, 5}),
    [](const auto& param_info) {
      return "m" + std::to_string(std::get<0>(param_info.param)) + "k" +
             std::to_string(std::get<1>(param_info.param)) + "n" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(TensorAlgebraTest, ColMeanMatchesManualAverage) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal({17, 6}, &rng);
  Tensor mean = a.ColMean();
  for (size_t j = 0; j < 6; ++j) {
    double ref = 0.0;
    for (size_t i = 0; i < 17; ++i) ref += a.At(i, j);
    EXPECT_NEAR(mean[j], ref / 17.0, 1e-12);
  }
}

TEST(TensorAlgebraTest, GatherThenStackRoundTrips) {
  Rng rng(7);
  Tensor a = Tensor::RandomNormal({9, 4}, &rng);
  std::vector<size_t> all(9);
  for (size_t i = 0; i < 9; ++i) all[i] = i;
  EXPECT_DOUBLE_EQ(a.GatherRows(all).MaxAbsDiff(a), 0.0);
  std::vector<Tensor> rows;
  for (size_t i = 0; i < 9; ++i) rows.push_back(a.Row(i));
  EXPECT_DOUBLE_EQ(Tensor::StackRows(rows).MaxAbsDiff(a), 0.0);
}

TEST(TensorAlgebraTest, ReshapeIsAnIsometry) {
  Rng rng(9);
  Tensor a = Tensor::RandomNormal({3, 4, 5}, &rng);
  Tensor r = a.Reshape({60}).Reshape({5, 12}).Reshape({3, 4, 5});
  EXPECT_DOUBLE_EQ(r.MaxAbsDiff(a), 0.0);
  EXPECT_DOUBLE_EQ(r.SquaredNorm(), a.SquaredNorm());
}

TEST(TensorAlgebraTest, HadamardCommutes) {
  Rng rng(11);
  Tensor a = Tensor::RandomNormal({6, 6}, &rng);
  Tensor b = Tensor::RandomNormal({6, 6}, &rng);
  EXPECT_DOUBLE_EQ((a * b).MaxAbsDiff(b * a), 0.0);
}

TEST(TensorAlgebraTest, ScalarOpsCompose) {
  Rng rng(13);
  Tensor a = Tensor::RandomNormal({10}, &rng);
  Tensor left = (a * 2.0 + 3.0) / 2.0 - 1.5;
  EXPECT_NEAR(left.MaxAbsDiff(a), 0.0, 1e-12);
}

}  // namespace
}  // namespace tasfar
