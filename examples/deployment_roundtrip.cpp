// Deployment round trip: what actually ships from the source side to a
// target device in the source-free setting, exercised end-to-end.
//
//   source side:   train model  ->  calibrate (tau, Q_s)
//                  SaveParams(model) + SaveCalibration(calib)
//   ---- files cross; the source data never does ----
//   target side:   rebuild the architecture, LoadParams, LoadCalibration
//                  Tasfar::Adapt on unlabeled target data
//                  SaveDensityMap(report) for offline inspection

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/calibration_io.h"
#include "core/tasfar.h"
#include "data/housing_sim.h"
#include "eval/metrics.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace tasfar;  // Example code; library code never does this.

// File I/O on the shipped artifacts is recoverable in the library (a failed
// load leaves the in-memory model untouched), so the demo reports the error
// and exits instead of aborting.
static void OrDie(const Status& s, const char* what) {
  if (s.ok()) return;
  std::fprintf(stderr, "deployment_roundtrip: %s: %s\n", what,
               s.ToString().c_str());
  std::exit(1);
}

int main() {
  // Observability demo: metrics are always collected here; tracing follows
  // TASFAR_TRACE (set it to a path, e.g. trace.json, then load the file in
  // chrome://tracing or https://ui.perfetto.dev).
  obs::SetMetricsEnabled(true);
  const std::string weights_path = "/tmp/tasfar_demo_weights.txt";
  const std::string calib_path = "/tmp/tasfar_demo_calib.txt";
  const std::string map_path = "/tmp/tasfar_demo_density_map.txt";

  HousingSimConfig sim_cfg;
  sim_cfg.source_samples = 2000;
  sim_cfg.target_samples = 1000;
  HousingSimulator sim(sim_cfg, 99);
  Dataset source = sim.GenerateSource();
  Dataset target = sim.GenerateTarget();

  // Shared preprocessing, fitted on source and (in a real deployment)
  // shipped alongside the model.
  Normalizer normalizer;
  normalizer.Fit(source.inputs);
  Tensor src_x = normalizer.Apply(source.inputs);
  Tensor tgt_x = normalizer.Apply(target.inputs);

  TasfarOptions options;
  options.grid_cell_size = 0.1;

  // ---------------- Source side ----------------
  {
    Rng rng(1);
    auto model = BuildTabularModel(kNumHousingFeatures, &rng);
    Adam optimizer(1e-3);
    Trainer trainer(model.get(), &optimizer,
                    [](const Tensor& p, const Tensor& t, Tensor* g,
                       const std::vector<double>* w) {
                      return loss::Mse(p, t, g, w);
                    });
    TrainConfig tc;
    tc.epochs = 30;
    trainer.Fit(src_x, source.targets, tc, &rng);

    Tasfar tasfar(options);
    SourceCalibration calib =
        tasfar.Calibrate(model.get(), src_x, source.targets);
    OrDie(SaveParams(model.get(), weights_path), "saving weights");
    OrDie(SaveCalibration(calib, calib_path), "saving calibration");
    std::printf("source side: shipped %s and %s (tau = %.4f)\n",
                weights_path.c_str(), calib_path.c_str(), calib.tau);
  }

  // ---------------- Target side ----------------
  {
    Rng rng(2);  // Fresh process: only the architecture is known.
    auto model = BuildTabularModel(kNumHousingFeatures, &rng);
    OrDie(LoadParams(model.get(), weights_path), "loading weights");
    Result<SourceCalibration> calib = LoadCalibration(calib_path);
    OrDie(calib.status(), "loading calibration");

    Tasfar tasfar(options);
    Rng adapt_rng(3);
    TasfarReport report =
        tasfar.Adapt(model.get(), calib.value(), tgt_x, &adapt_rng);
    std::printf("target side: %zu confident / %zu uncertain rows\n",
                report.num_confident, report.num_uncertain);

    Tensor before = BatchedForward(model.get(), tgt_x);
    Tensor after = BatchedForward(report.target_model.get(), tgt_x);
    const double mse_before =
        loss::Mse(before, target.targets, nullptr, nullptr);
    const double mse_after =
        loss::Mse(after, target.targets, nullptr, nullptr);
    std::printf("coastal MSE: %.4f -> %.4f\n", mse_before, mse_after);
    obs::Registry::Get()
        .GetGauge("tasfar.eval.mae_before")
        ->Set(metrics::Mae(before, target.targets));
    obs::Registry::Get()
        .GetGauge("tasfar.eval.mae_after")
        ->Set(metrics::Mae(after, target.targets));

    if (report.density_map.has_value()) {
      OrDie(SaveDensityMap(*report.density_map, map_path),
            "saving density map");
      Result<DensityMap> reloaded = LoadDensityMap(map_path);
      OrDie(reloaded.status(), "reloading density map");
      std::printf(
          "density map saved to %s (%zu cells, mass %.3f) and verified "
          "by reload\n",
          map_path.c_str(), reloaded.value().NumCells(),
          reloaded.value().TotalMass());
    }
  }
  if (obs::WriteMetricsSnapshot("deployment")) {
    std::printf("metrics snapshot: bench_out/metrics_deployment.json\n");
  }
  if (obs::FlushTraceToEnvPath()) {
    std::printf("trace written to $TASFAR_TRACE — open it in "
                "chrome://tracing or https://ui.perfetto.dev\n");
  }
  std::printf(
      "\nEverything the target needed fit in two small text files — no\n"
      "source data crossed the boundary.\n");
  return 0;
}
