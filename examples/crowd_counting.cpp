// Image-based people counting: adapt the multi-column CNN counter from
// the varied source scenes (Part A) to three street sites (Part B),
// exploiting each site's characteristic crowd level.

#include <cstdio>

#include "eval/crowd_harness.h"

using namespace tasfar;  // Example code; library code never does this.

int main() {
  CrowdHarnessConfig cfg;
  cfg.sim.image_size = 20;
  cfg.sim.part_a_images = 150;
  cfg.sim.part_b_images = 210;
  cfg.source_epochs = 15;
  cfg.tasfar.mc_samples = 10;
  cfg.tasfar.grid_cell_size = 0.1;  // In log1p(count) units.
  cfg.tasfar.adaptation.train.epochs = 20;

  std::printf("training the counting model on Part A (%zu images)...\n",
              cfg.sim.part_a_images);
  CrowdHarness harness(cfg);
  harness.Prepare();

  for (const CrowdSceneData& scene : harness.BuildScenes()) {
    CrowdEval before = harness.Evaluate(harness.source_model(), scene);
    TasfarReport report;
    auto adapted = harness.AdaptTasfar(scene, &report);
    CrowdEval after = harness.Evaluate(adapted.get(), scene);
    std::printf(
        "scene %d: test MAE %.2f -> %.2f, test MSE %.2f -> %.2f "
        "(%zu uncertain images)\n",
        scene.scene_id + 1, before.mae_test, after.mae_test,
        before.mse_test, after.mse_test, report.num_uncertain);
  }
  std::printf(
      "\nEach site's count distribution served as the prior that corrected\n"
      "the counter on images it was uncertain about.\n");
  return 0;
}
