// Tabular prediction: housing prices (coastal target) and taxi trip
// durations (Manhattan target) — the paper's two generality checks.

#include <cstdio>

#include "data/housing_sim.h"
#include "data/taxi_sim.h"
#include "eval/tabular_harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace tasfar;  // Example code; library code never does this.

namespace {

void RunTask(const char* label, TabularHarnessConfig cfg, Dataset source,
             Dataset target) {
  std::printf("\n== %s ==\n", label);
  TabularHarness harness(cfg, std::move(source), std::move(target));
  harness.Prepare();
  TasfarReport report;
  TabularEval eval = harness.EvaluateTasfar(&report);
  const char* metric =
      cfg.metric == TabularMetric::kMse ? "MSE" : "RMSLE";
  std::printf("target %s: %.4f -> %.4f on the adaptation region\n", metric,
              eval.metric_adapt_before, eval.metric_adapt_after);
  std::printf("target %s: %.4f -> %.4f on held-out target data\n", metric,
              eval.metric_test_before, eval.metric_test_after);
  std::printf("(%zu of %zu target rows were uncertain)\n",
              report.num_uncertain,
              report.num_uncertain + report.num_confident);
  // One snapshot per task; reset so each file reflects only its own run.
  if (obs::WriteMetricsSnapshot(cfg.task_name)) {
    std::printf("metrics snapshot: bench_out/metrics_%s.json\n",
                cfg.task_name.c_str());
  }
  obs::Registry::Get().ResetAllForTest();
}

}  // namespace

int main() {
  obs::SetMetricsEnabled(true);
  {
    HousingSimConfig sim;
    sim.source_samples = 2500;
    sim.target_samples = 1200;
    HousingSimulator simulator(sim, 5);
    TabularHarnessConfig cfg;
    cfg.task_name = "housing";
    cfg.metric = TabularMetric::kMse;
    cfg.source_epochs = 30;
    cfg.tasfar.grid_cell_size = 0.05;  // Standardized label units.
    RunTask("California housing (coastal districts as target)", cfg,
            simulator.GenerateSource(), simulator.GenerateTarget());
  }
  {
    TaxiSimConfig sim;
    sim.source_samples = 2500;
    sim.target_samples = 1200;
    TaxiSimulator simulator(sim, 5);
    TabularHarnessConfig cfg;
    cfg.task_name = "taxi";
    cfg.metric = TabularMetric::kRmsle;
    cfg.source_epochs = 30;
    cfg.tasfar.grid_cell_size = 0.05;  // Standardized label units.
    RunTask("NYC taxi trip duration (Manhattan departures as target)", cfg,
            simulator.GenerateSource(), simulator.GenerateTarget());
  }
  if (obs::FlushTraceToEnvPath()) {
    std::printf("trace written to $TASFAR_TRACE\n");
  }
  std::printf(
      "\nThe same Tasfar options adapt an MLP on both tasks — the label\n"
      "distribution of the target region is all it needs.\n");
  return 0;
}
