// Quickstart: the TASFAR pipeline end-to-end on a small synthetic
// regression task, using only the public API.
//
//   1. Train a source model (an MLP with dropout) on source data.
//   2. Calibrate on held-out source data (τ and the Q_s curve) — this is
//      everything that ships with the model; the source data never leaves.
//   3. Adapt on *unlabeled* target data with Tasfar::Adapt.
//   4. Compare target error before vs after.

#include <cstdio>

#include "core/tasfar.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

using namespace tasfar;  // Example code; library code never does this.

int main() {
  Rng rng(42);

  // --- 1. Source task: y = x on x in [-2, 2] --------------------------
  const size_t n_src = 600;
  Tensor src_x({n_src, 1});
  Tensor src_y({n_src, 1});
  for (size_t i = 0; i < n_src; ++i) {
    const double x = rng.Uniform(-2.0, 2.0);
    src_x.At(i, 0) = x;
    src_y.At(i, 0) = x + rng.Normal(0.0, 0.05);
  }

  Sequential model;
  model.Emplace<Dense>(1, 32, &rng);
  model.Emplace<Relu>();
  model.Emplace<Dropout>(0.2, rng.NextU64());  // MC-dropout needs this.
  model.Emplace<Dense>(32, 1, &rng);

  Adam optimizer(1e-2);
  Trainer trainer(&model, &optimizer,
                  [](const Tensor& p, const Tensor& t, Tensor* g,
                     const std::vector<double>* w) {
                    return loss::Mse(p, t, g, w);
                  });
  TrainConfig tc;
  tc.epochs = 60;
  trainer.Fit(src_x, src_y, tc, &rng);
  std::printf("source model trained (%zu parameters)\n",
              model.ParameterCount());

  // --- 2. Source-side calibration --------------------------------------
  TasfarOptions options;
  options.mc_samples = 20;
  options.eta = 0.9;
  options.grid_cell_size = 0.05;
  options.adaptation.train.epochs = 100;
  options.adaptation.train.early_stop_rel_drop = 0.005;
  options.adaptation.train.patience = 8;
  Tasfar tasfar(options);
  SourceCalibration calibration = tasfar.Calibrate(&model, src_x, src_y);
  std::printf("calibrated: tau = %.4f, Qs slope = %.3f\n", calibration.tau,
              calibration.qs_per_dim[0].line.slope);

  // --- 3. Target scenario ----------------------------------------------
  // A mix of familiar inputs and out-of-distribution inputs; the target
  // labels cluster near 1.9 (the scenario's own label distribution).
  const size_t n_tgt = 300;
  Tensor tgt_x({n_tgt, 1});
  Tensor tgt_y({n_tgt, 1});
  for (size_t i = 0; i < n_tgt; ++i) {
    const bool ood = i % 3 == 0;
    tgt_x.At(i, 0) = ood ? rng.Uniform(2.3, 3.2) : rng.Uniform(1.5, 2.0);
    tgt_y.At(i, 0) = 1.9 + rng.Normal(0.0, 0.1);
  }

  TasfarReport report = tasfar.Adapt(&model, calibration, tgt_x, &rng);
  std::printf("adaptation: %zu confident / %zu uncertain samples\n",
              report.num_confident, report.num_uncertain);

  // --- 4. Before/after comparison --------------------------------------
  Tensor before = BatchedForward(&model, tgt_x);
  Tensor after = BatchedForward(report.target_model.get(), tgt_x);
  const double mse_before = loss::Mse(before, tgt_y, nullptr, nullptr);
  const double mse_after = loss::Mse(after, tgt_y, nullptr, nullptr);
  std::printf("target MSE: %.4f (source model) -> %.4f (TASFAR)\n",
              mse_before, mse_after);
  std::printf("reduction: %.1f%%\n",
              100.0 * (mse_before - mse_after) / mse_before);
  return 0;
}
