// Pedestrian dead reckoning: adapt the TCN source model to individual
// walkers, the paper's flagship scenario. Uses the simulated IMU substrate
// and the PdrHarness experiment pipeline.
//
// Usage: pdr_adaptation [num_users]   (default 4)

#include <cstdio>
#include <cstdlib>

#include "eval/pdr_harness.h"

using namespace tasfar;  // Example code; library code never does this.

int main(int argc, char** argv) {
  size_t num_users = 4;
  if (argc > 1) num_users = static_cast<size_t>(std::atoi(argv[1]));

  PdrHarnessConfig cfg;
  cfg.sim.num_seen_users = 6;
  cfg.sim.num_unseen_users = 2;
  cfg.sim.source_steps_per_user = 150;
  cfg.source_epochs = 20;
  cfg.tasfar.mc_samples = 15;
  cfg.tasfar.grid_cell_size = 0.1;  // 10 cm, the paper's setting.

  std::printf("training the PDR source model on %zu seen users...\n",
              cfg.sim.num_seen_users);
  PdrHarness harness(cfg);
  harness.Prepare();
  std::printf("confidence threshold tau = %.4f\n\n",
              harness.calibration().tau);

  size_t shown = 0;
  for (const PdrUserData& user : harness.users()) {
    if (shown >= num_users) break;
    ++shown;
    PdrUserCache cache = harness.BuildUserCache(user);
    TasfarReport report;
    PdrSchemeEval eval = harness.EvaluateTasfar(cache, &report);
    std::printf(
        "user %2d (%s, stride %.2f m): STE %.3f -> %.3f m on adaptation "
        "set, %.3f -> %.3f m on test set (%zu/%zu uncertain windows)\n",
        user.profile.id, user.profile.seen ? "seen  " : "unseen",
        user.profile.stride_mean, eval.ste_adapt_before,
        eval.ste_adapt_after, eval.ste_test_before, eval.ste_test_after,
        report.num_uncertain, report.num_uncertain + report.num_confident);
  }
  std::printf(
      "\nEach user's label density map (their personal stride/turn ring)\n"
      "calibrated the source model without any labels or source data.\n");
  return 0;
}
