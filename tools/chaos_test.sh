#!/usr/bin/env bash
# Chaos-mode test run (docs/TESTING.md): executes every test binary of an
# existing build with randomized failpoints injected through the
# TASFAR_FAILPOINTS environment variable.
#
# Usage: tools/chaos_test.sh [build_dir] [seed] [p]
#   build_dir defaults to "build", seed to 1, p (per-hit fire probability)
#   to 0.01.
#
# Pass/fail contract: under injected faults, individual gtest assertions
# MAY fail — a poisoned GEMM legitimately changes numeric expectations.
# What must never happen is a crash: no signal deaths (SIGSEGV, SIGABRT
# from an unguarded TASFAR_CHECK on poisoned data), no hangs. The script
# therefore fails only when a binary exits >= 126 (shell signal encoding)
# and reports assertion-failed binaries as tolerated degradation.
#
# Reproducing a chaos failure: rerun the failing binary alone with the
# same spec, e.g.
#   TASFAR_FAILPOINTS="random:p=0.01:seed=7" ./build/tests/trainer_test

set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
seed="${2:-1}"
p="${3:-0.01}"

cd "$repo_root"
test_dir="$build_dir/tests"
if [[ ! -d "$test_dir" ]]; then
  echo "chaos_test.sh: '$test_dir' not found — build the tests first." >&2
  exit 2
fi

spec="random:p=${p}:seed=${seed}"
echo "chaos_test.sh: TASFAR_FAILPOINTS=${spec}"

crashed=()
degraded=()
clean=0
while IFS= read -r bin; do
  name="$(basename "$bin")"
  TASFAR_FAILPOINTS="$spec" TASFAR_METRICS=1 "$bin" >/dev/null 2>&1
  code=$?
  if [[ $code -ge 126 ]]; then
    echo "CRASH   $name (exit $code)"
    crashed+=("$name")
  elif [[ $code -ne 0 ]]; then
    echo "degrade $name (exit $code — assertion failures tolerated)"
    degraded+=("$name")
  else
    clean=$((clean + 1))
  fi
done < <(find "$test_dir" -maxdepth 1 -type f -perm -u+x | sort)

total=$((clean + ${#degraded[@]} + ${#crashed[@]}))
echo
echo "chaos_test.sh: seed=${seed} p=${p}: ${total} binaries —" \
     "${clean} clean, ${#degraded[@]} degraded, ${#crashed[@]} crashed"
if [[ ${#crashed[@]} -gt 0 ]]; then
  echo "chaos_test.sh: FAIL — crashes under fault injection: ${crashed[*]}" >&2
  exit 1
fi
echo "chaos_test.sh: PASS — no crashes"
