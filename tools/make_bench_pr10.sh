#!/usr/bin/env sh
# Assembles BENCH_PR10.json, the record of the pluggable-estimator PR
# (docs/UNCERTAINTY.md): real_time (ns) for the DeepEnsemble Predict
# thread sweep (member forward passes fanned across ParallelFor) plus the
# steady-state allocation counters proving the ensemble hot path runs on
# workspace arenas. All rows come from the SAME run of bench_micro_core,
# so the recorded scaling ratios are same-machine, same-build ratios, not
# cross-run noise.
#
# Usage:
#   tools/make_bench_pr10.sh CORE_JSON OUT
#
# where CORE_JSON is a fresh --benchmark_format=json run of
# bench_micro_core covering BM_EnsemblePredictThreads and
# BM_EnsembleAllocs. Fails if any benchmark reported an error — benchmark
# errors must fail the build, not silently produce a partial record.
set -eu

if [ "$#" -ne 2 ]; then
  echo "usage: $0 CORE_JSON OUT" >&2
  exit 2
fi

if jq -e '[.benchmarks[] | select(.error_occurred == true)] | length > 0' \
    "$1" > /dev/null; then
  echo "benchmark errors in $1:" >&2
  jq -r '.benchmarks[] | select(.error_occurred == true) |
         "  \(.name): \(.error_message)"' "$1" >&2
  exit 1
fi

jq -n --slurpfile core "$1" '
  def rows($prefix): [$core[0].benchmarks[] |
    select(.name | startswith($prefix)) | {name, real_time, time_unit}];
  def ns($n): [$core[0].benchmarks[] | select(.name == $n) | .real_time][0];
  def speedup($base; $threaded): (ns($base) / ns($threaded));
  {
    ensemble_predict: {
      rows: rows("BM_EnsemblePredictThreads/"),
      speedup_5members_2threads:
        speedup("BM_EnsemblePredictThreads/5/1/real_time";
                "BM_EnsemblePredictThreads/5/2/real_time"),
      speedup_5members_4threads:
        speedup("BM_EnsemblePredictThreads/5/1/real_time";
                "BM_EnsemblePredictThreads/5/4/real_time"),
      speedup_5members_8threads:
        speedup("BM_EnsemblePredictThreads/5/1/real_time";
                "BM_EnsemblePredictThreads/5/8/real_time")
    },
    ensemble_allocs: {
      rows: [$core[0].benchmarks[] |
        select(.name | startswith("BM_EnsembleAllocs")) |
        {name, real_time, time_unit,
         tensor_allocs_per_iter, workspace_reuses_per_iter}]
    },
    headline: {
      ensemble_predict_worst_threaded_overhead:
        ([speedup("BM_EnsemblePredictThreads/5/2/real_time";
                  "BM_EnsemblePredictThreads/5/1/real_time"),
          speedup("BM_EnsemblePredictThreads/5/4/real_time";
                  "BM_EnsemblePredictThreads/5/1/real_time"),
          speedup("BM_EnsemblePredictThreads/5/8/real_time";
                  "BM_EnsemblePredictThreads/5/1/real_time")] | max),
      targets: {ensemble_predict_worst_threaded_overhead: 1.3},
      note: "The gated ratio is overhead (slowest threaded row vs the serial baseline) rather than a speedup floor, because the ratio must be meaningful on any core count — on a 1-core machine the fan-out cannot speed anything up and the honest claim is only that it does not slow Predict down. The ungated speedup_5members_* rows show real scaling when cores exist. BM_EnsembleAllocs itself fails (error_occurred) if steady-state Predict allocates, so the error gate above doubles as the alloc gate."
    }
  }' > "$2"

echo "wrote $2 (2-thread x$(jq -r '.ensemble_predict.speedup_5members_2threads' "$2"), 4-thread x$(jq -r '.ensemble_predict.speedup_5members_4threads' "$2"), worst overhead x$(jq -r '.headline.ensemble_predict_worst_threaded_overhead' "$2"))"

# The acceptance bound is part of the record: fail if fanning the member
# passes across the pool started costing real time over the serial path.
jq -e '.headline.ensemble_predict_worst_threaded_overhead
       <= .headline.targets.ensemble_predict_worst_threaded_overhead' "$2" \
    > /dev/null || {
  echo "ensemble Predict threading overhead above acceptance bound" >&2
  exit 1
}
