#!/usr/bin/env sh
# Assembles BENCH_PR5.json, the before/after record of the zero-copy
# memory-model change: real_time (ns) for BM_MatMulThreads,
# BM_McDropoutPredictThreads, and the steady-state allocation benchmark
# BM_McDropoutAllocs. "Before" files are the checked-in pre-change runs
# under bench/baselines/; "after" files come from a fresh run of
# bench_micro_core / bench_micro_nn with --benchmark_format=json.
#
# Usage:
#   tools/make_bench_pr5.sh BEFORE_MCD BEFORE_MATMUL AFTER_MCD AFTER_MATMUL OUT
#
# Fails if any "after" benchmark reported an error — in particular
# BM_McDropoutAllocs skips with an error when a steady-state Predict
# allocated a tensor buffer, and that must fail the build.
set -eu

if [ "$#" -ne 5 ]; then
  echo "usage: $0 BEFORE_MCD BEFORE_MATMUL AFTER_MCD AFTER_MATMUL OUT" >&2
  exit 2
fi

for f in "$3" "$4"; do
  if jq -e '[.benchmarks[] | select(.error_occurred == true)] | length > 0' \
      "$f" > /dev/null; then
    echo "benchmark errors in $f:" >&2
    jq -r '.benchmarks[] | select(.error_occurred == true) |
           "  \(.name): \(.error_message)"' "$f" >&2
    exit 1
  fi
done

jq -n \
  --slurpfile before_mcd "$1" --slurpfile before_matmul "$2" \
  --slurpfile after_mcd "$3" --slurpfile after_matmul "$4" '
  def rows($doc): [$doc.benchmarks[] |
    {name, real_time, time_unit} +
    (if has("tensor_allocs_per_iter")
     then {tensor_allocs_per_iter, workspace_reuses_per_iter} else {} end)];
  def ns($doc; $n): [$doc.benchmarks[] | select(.name == $n) | .real_time][0];
  {
    before: {
      mc_dropout: rows($before_mcd[0]),
      matmul: rows($before_matmul[0])
    },
    after: {
      mc_dropout: rows($after_mcd[0]),
      matmul: rows($after_matmul[0])
    },
    headline: {
      benchmark: "BM_McDropoutPredictThreads/20/1/real_time",
      before_ns: ns($before_mcd[0]; "BM_McDropoutPredictThreads/20/1/real_time"),
      after_ns: ns($after_mcd[0]; "BM_McDropoutPredictThreads/20/1/real_time"),
      speedup: (ns($before_mcd[0]; "BM_McDropoutPredictThreads/20/1/real_time")
                / ns($after_mcd[0]; "BM_McDropoutPredictThreads/20/1/real_time"))
    }
  }' > "$5"

echo "wrote $5 (headline speedup: $(jq -r '.headline.speedup' "$5"))"
