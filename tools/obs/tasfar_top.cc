// tasfar_top: live per-tenant view of a running tasfar_served
// (docs/SERVING.md §Diagnosing a degraded session).
//
//   tasfar_top --port P [--interval-ms 1000] [--once]
//
// Polls the daemon's plain-HTTP endpoints — `/sessions` for the
// per-session table and `/metrics` for a process-wide header line — and
// renders them as a refreshing terminal table. `--once` prints a single
// snapshot and exits (CI, scripts).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// One GET round-trip against the daemon; returns the response body ("" on
/// any transport failure — the daemon may simply not be up yet).
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return "";
    }
    off += static_cast<size_t>(w);
  }
  std::string response;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return "";
  if (response.compare(0, 12, "HTTP/1.0 200") != 0) return "";
  return response.substr(body + 4);
}

/// The value of `name` in a Prometheus text body, or "0" when absent.
std::string MetricValue(const std::string& metrics, const std::string& name) {
  std::istringstream in(metrics);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, name.size(), name) == 0 &&
        line.size() > name.size() && line[name.size()] == ' ') {
      return line.substr(name.size() + 1);
    }
  }
  return "0";
}

struct SessionRow {
  std::vector<std::string> cols;  ///< Leading fixed columns.
  std::string reason;             ///< Trailing free-form degraded reason.
};

/// Fixed columns before the free-form reason (session_manager.cc
/// SessionsText header).
constexpr size_t kFixedCols = 11;

bool ParseSessions(const std::string& body, std::vector<SessionRow>* rows) {
  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line)) return false;  // Header.
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    SessionRow row;
    std::istringstream fields(line);
    std::string field;
    while (row.cols.size() < kFixedCols && fields >> field) {
      row.cols.push_back(field);
    }
    if (row.cols.size() < kFixedCols) return false;
    std::getline(fields, row.reason);
    if (!row.reason.empty() && row.reason.front() == ' ') {
      row.reason.erase(0, 1);
    }
    rows->push_back(std::move(row));
  }
  return true;
}

void Render(uint16_t port, bool clear) {
  const std::string metrics = HttpGet(port, "/metrics");
  const std::string sessions = HttpGet(port, "/sessions");
  if (clear) std::fputs("\033[H\033[2J", stdout);
  if (metrics.empty() && sessions.empty()) {
    std::printf("tasfar_top: no response from 127.0.0.1:%u (daemon down?)\n",
                port);
    return;
  }
  std::printf(
      "tasfar_served 127.0.0.1:%u  requests=%s errors=%s "
      "adapt_completed=%s degraded=%s flight_dumps=%s\n\n",
      port,
      MetricValue(metrics, "tasfar_serve_requests_total").c_str(),
      MetricValue(metrics, "tasfar_serve_requests_errors").c_str(),
      MetricValue(metrics, "tasfar_serve_adapt_completed").c_str(),
      MetricValue(metrics, "tasfar_serve_session_degraded").c_str(),
      MetricValue(metrics, "tasfar_serve_flight_dumps").c_str());
  std::vector<SessionRow> rows;
  if (!ParseSessions(sessions, &rows)) {
    std::printf("(could not parse /sessions)\n");
    return;
  }
  std::printf("%-16s %-12s %8s %7s %10s %-9s %8s %8s %s\n", "USER", "STATE",
              "ROWS", "BUDGET%", "ADAPTS", "LAST", "P50ms", "P99ms",
              "REASON");
  for (const SessionRow& row : rows) {
    // Columns: user state rows used budget pct adapt_runs last_adapt
    //          predict_count p50 p99 (reason trails).
    std::printf("%-16s %-12s %8s %7s %10s %-9s %8s %8s %s\n",
                row.cols[0].c_str(), row.cols[1].c_str(),
                row.cols[2].c_str(), row.cols[5].c_str(),
                row.cols[6].c_str(), row.cols[7].c_str(),
                row.cols[9].c_str(), row.cols[10].c_str(),
                row.reason.c_str());
  }
  if (rows.empty()) std::printf("(no live sessions)\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  long port = 0;
  long interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: tasfar_top --port P [--interval-ms N] [--once]\n");
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr,
                 "usage: tasfar_top --port P [--interval-ms N] [--once]\n");
    return 2;
  }
  if (once) {
    Render(static_cast<uint16_t>(port), /*clear=*/false);
    return 0;
  }
  for (;;) {
    Render(static_cast<uint16_t>(port), /*clear=*/true);
    ::poll(nullptr, 0, static_cast<int>(interval_ms));
  }
}
