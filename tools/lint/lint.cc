#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"

namespace tasfar::lint {

namespace {

using analyze::CodeTokens;
using analyze::IsIdent;
using analyze::IsPunct;
using analyze::Lex;
using analyze::MatchingClose;
using analyze::TokKind;
using analyze::Token;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when toks[i] is an identifier qualified as std::<name> (so the
/// finding anchors at the `std` token's line).
bool IsStdQualified(const std::vector<Token>& toks, size_t i) {
  return i >= 2 && IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std");
}

/// True when toks[i] is preceded by a `::` qualifier of any kind.
bool IsQualified(const std::vector<Token>& toks, size_t i) {
  return i >= 1 && IsPunct(toks[i - 1], "::");
}

/// Matches the token sequence of an `#include <name>` directive starting
/// at the `#`: # include < name >. Returns true and leaves the directive
/// line in *line.
bool IsIncludeOf(const std::vector<Token>& toks, size_t i, const char* name,
                 int* line) {
  if (i + 4 >= toks.size()) return false;
  if (!IsPunct(toks[i], "#") || !IsIdent(toks[i + 1], "include") ||
      !IsPunct(toks[i + 2], "<") || !IsIdent(toks[i + 3], name) ||
      !IsPunct(toks[i + 4], ">")) {
    return false;
  }
  *line = toks[i].line;
  return true;
}

/// Whether the call argument list opening at toks[open] (a "(") is empty
/// or a single null-ish token — a wall-clock `time()` / `time(NULL)` /
/// `time(nullptr)` / `time(0)` call used as a seed.
bool IsNullishArgList(const std::vector<Token>& toks, size_t open) {
  const size_t close = MatchingClose(toks, open);
  if (close >= toks.size()) return false;
  if (close == open + 1) return true;
  if (close != open + 2) return false;
  const Token& arg = toks[open + 1];
  return IsIdent(arg, "NULL") || IsIdent(arg, "nullptr") ||
         (arg.kind == TokKind::kNumber && arg.text == "0");
}

/// Implicit-RNG primitives. Everything stochastic must draw from an
/// explicitly passed tasfar::Rng& so runs are reproducible.
void CheckRngDiscipline(const std::string& path,
                        const std::vector<Token>& toks,
                        std::vector<Finding>* findings) {
  static const std::set<std::string> kQualified = {
      "rand",        "srand",       "random_device",
      "mt19937",     "minstd_rand", "default_random_engine",
  };
  // Unqualified engine names still in scope after a using-declaration.
  static const std::set<std::string> kUnqualified = {"random_device",
                                                     "mt19937"};
  const std::string why = "use an explicitly passed tasfar::Rng& instead";
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    if (IsStdQualified(toks, i) && kQualified.count(name) != 0) {
      findings->push_back({path, toks[i - 2].line, "rng-discipline",
                           "std::" + name + " is banned: " + why});
      continue;
    }
    if (IsQualified(toks, i)) {
      // Qualified by something other than std:: (or already reported).
      if (name == "time" && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(") && IsNullishArgList(toks, i + 1)) {
        findings->push_back({path, toks[i].line, "rng-discipline",
                             "wall-clock time() seeding is banned: pass a "
                             "fixed seed through tasfar::Rng"});
      }
      continue;
    }
    if (kUnqualified.count(name) != 0) {
      findings->push_back(
          {path, toks[i].line, "rng-discipline", name + " is banned: " + why});
      continue;
    }
    if ((name == "rand" || name == "srand") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      findings->push_back({path, toks[i].line, "rng-discipline",
                           name + "() is banned: " + why});
      continue;
    }
    if (name == "time" && i + 1 < toks.size() && IsPunct(toks[i + 1], "(") &&
        IsNullishArgList(toks, i + 1)) {
      findings->push_back({path, toks[i].line, "rng-discipline",
                           "wall-clock time() seeding is banned: pass a "
                           "fixed seed through tasfar::Rng"});
    }
  }
}

/// Raw threading primitives. All parallelism must flow through the
/// ThreadPool / ParallelFor substrate so the determinism contract of
/// docs/THREADING.md (same seed + any thread count ⇒ identical output)
/// holds repo-wide; only the substrate itself may spawn threads.
void CheckThreadDiscipline(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Finding>* findings) {
  if (path == "src/util/thread_pool.h" || path == "src/util/thread_pool.cc") {
    return;
  }
  static const std::set<std::string> kBanned = {"thread", "jthread", "async"};
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kBanned.count(toks[i].text) == 0 ||
        !IsStdQualified(toks, i)) {
      continue;
    }
    findings->push_back(
        {path, toks[i - 2].line, "thread-discipline",
         "std::" + toks[i].text +
             " is banned: use ThreadPool / ParallelFor from "
             "util/thread_pool.h instead"});
  }
}

/// Ad-hoc timing. All clock reads in library code must go through
/// src/obs/ (obs::MonotonicMicros / TASFAR_TRACE_SPAN / the metrics
/// registry) so stage timings land in one observable place instead of
/// scattered std::chrono stopwatches; only src/obs/ itself may touch the
/// clock.
void CheckTimingDiscipline(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Finding>* findings) {
  if (path.compare(0, 8, "src/obs/") == 0) return;
  for (size_t i = 0; i < toks.size(); ++i) {
    int line = 0;
    if (IsIncludeOf(toks, i, "chrono", &line)) {
      findings->push_back(
          {path, line, "timing-discipline",
           "<chrono> is banned in src/ outside src/obs/: time through "
           "obs::MonotonicMicros / TASFAR_TRACE_SPAN instead"});
      i += 4;
      continue;
    }
    if (!IsIdent(toks[i], "chrono")) continue;
    // `<chrono>` outside an include directive still reads as < chrono >;
    // skip the token after any '<' so the include form is reported once.
    if (i >= 1 && IsPunct(toks[i - 1], "<")) continue;
    findings->push_back(
        {path, toks[i].line, "timing-discipline",
         "std::chrono is banned in src/ outside src/obs/: time through "
         "obs::MonotonicMicros / TASFAR_TRACE_SPAN instead"});
  }
}

void CheckNoIostream(const std::string& path, const std::vector<Token>& toks,
                     std::vector<Finding>* findings) {
  for (size_t i = 0; i < toks.size(); ++i) {
    int line = 0;
    if (IsIncludeOf(toks, i, "iostream", &line)) {
      findings->push_back({path, line, "no-iostream",
                           "<iostream> is banned in src/: use "
                           "util/logging.h (TASFAR_LOG) instead"});
      i += 4;
    }
  }
}

void CheckNoBareAssert(const std::string& path,
                       const std::vector<Token>& toks,
                       std::vector<Finding>* findings) {
  for (size_t i = 0; i < toks.size(); ++i) {
    // <cassert> / <assert.h> anywhere (they only ever appear in includes).
    if (IsPunct(toks[i], "<") && i + 2 < toks.size()) {
      if (IsIdent(toks[i + 1], "cassert") && IsPunct(toks[i + 2], ">")) {
        findings->push_back({path, toks[i].line, "check-not-assert",
                             "<cassert> is banned in src/: use util/check.h "
                             "(TASFAR_CHECK) instead"});
        i += 2;
        continue;
      }
      if (i + 4 < toks.size() && IsIdent(toks[i + 1], "assert") &&
          IsPunct(toks[i + 2], ".") && IsIdent(toks[i + 3], "h") &&
          IsPunct(toks[i + 4], ">")) {
        findings->push_back({path, toks[i].line, "check-not-assert",
                             "<assert.h> is banned in src/: use util/check.h "
                             "(TASFAR_CHECK) instead"});
        i += 4;
        continue;
      }
    }
    if (IsIdent(toks[i], "assert") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      findings->push_back({path, toks[i].line, "check-not-assert",
                           "bare assert() is banned in src/: use TASFAR_CHECK "
                           "(active in all build modes) instead"});
    }
  }
}

/// Memory discipline (docs/MEMORY.md). Two bans, both src/-only:
///
/// 1. By-value `Tensor` parameters. Tensor copies are cheap O(1) shares,
///    but a by-value parameter detaches (copies the whole buffer) on the
///    callee's first write and hides that cost at every call site; APIs
///    must take `const Tensor&` (read) or `Tensor*` (write).
/// 2. `std::vector<double>(... .data() ...)` constructions — copying a
///    tensor's storage into a fresh vector. Share the Tensor
///    (copy-on-write) or fill a Workspace tensor instead. src/tensor/ is
///    exempt: the copy-on-write detach itself is implemented this way.
void CheckMemoryDiscipline(const std::string& path,
                           const std::vector<Token>& toks,
                           std::vector<Finding>* findings) {
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "Tensor")) continue;
    // Parameter position: the previous token (skipping an optional
    // `const`) must be '(' or ','.
    size_t before = i;
    if (before >= 1 && IsIdent(toks[before - 1], "const")) --before;
    if (before == 0 ||
        (!IsPunct(toks[before - 1], "(") && !IsPunct(toks[before - 1], ","))) {
      continue;
    }
    // By-value means the next token is the parameter name: an identifier,
    // followed by ',', ')' or '='.
    if (toks[i + 1].kind != TokKind::kIdent) continue;
    if (!IsPunct(toks[i + 2], ",") && !IsPunct(toks[i + 2], ")") &&
        !IsPunct(toks[i + 2], "=")) {
      continue;
    }
    findings->push_back(
        {path, toks[i].line, "memory-discipline",
         "by-value Tensor parameter: take const Tensor& (read) or Tensor* "
         "(write) — a by-value copy detaches on first write"});
  }
  if (path.compare(0, 11, "src/tensor/") == 0) return;
  for (size_t i = 0; i + 6 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "std") || !IsPunct(toks[i + 1], "::") ||
        !IsIdent(toks[i + 2], "vector") || !IsPunct(toks[i + 3], "<") ||
        !IsIdent(toks[i + 4], "double") || !IsPunct(toks[i + 5], ">") ||
        !IsPunct(toks[i + 6], "(")) {
      continue;
    }
    const size_t open = i + 6;
    const size_t close = MatchingClose(toks, open);
    bool copies_data = false;
    for (size_t j = open + 1; j + 2 < close; ++j) {
      if (IsPunct(toks[j], ".") && IsIdent(toks[j + 1], "data") &&
          IsPunct(toks[j + 2], "(")) {
        copies_data = true;
        break;
      }
    }
    if (!copies_data) continue;
    findings->push_back(
        {path, toks[i].line, "memory-discipline",
         "copying tensor storage into a std::vector<double>: share the "
         "Tensor (copy-on-write) or fill a Workspace tensor instead"});
  }
}

/// Raw SIMD intrinsics (docs/MEMORY.md §"Float32 compute mode"). All
/// vectorized code lives behind the F32Kernels dispatch tables in
/// src/tensor/simd/ — the only place where per-ISA intrinsics, intrinsic
/// headers, and vector register types may appear. Everything else calls
/// through simd::Kernels() / MatMulF32Into, so a new ISA is one new
/// backend file, not a tree-wide audit.
void CheckSimdDiscipline(const std::string& path,
                         const std::vector<Token>& toks,
                         std::vector<Finding>* findings) {
  if (path.compare(0, 16, "src/tensor/simd/") == 0) return;
  static const std::set<std::string> kIntrinsicHeaders = {
      "immintrin", "emmintrin", "xmmintrin", "smmintrin", "tmmintrin",
      "pmmintrin", "nmmintrin", "wmmintrin", "ammintrin", "x86intrin",
      "x86gprintrin", "arm_neon", "arm_sve", "arm_acle",
  };
  const std::string why =
      ": raw SIMD intrinsics are banned outside src/tensor/simd/ — add a "
      "kernel to the F32Kernels dispatch table instead";
  auto is_intrinsic_ident = [](const std::string& name) {
    // x86: _mm_/_mm256_/_mm512_ functions and __m128/__m256/__m512 types.
    if (name.compare(0, 3, "_mm") == 0) return true;
    if (name.size() >= 4 && name.compare(0, 3, "__m") == 0 &&
        std::isdigit(static_cast<unsigned char>(name[3])) != 0) {
      return true;
    }
    // NEON: float32x4_t-style vector types and v*q_f32-style intrinsics.
    if (name.compare(0, 8, "float32x") == 0 ||
        name.compare(0, 8, "float64x") == 0) {
      return true;
    }
    if (name[0] == 'v' && (name.find("q_f32") != std::string::npos ||
                           name.find("q_f64") != std::string::npos)) {
      return true;
    }
    return false;
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    // `#include <name.h>` reads as: # include < name . h >.
    if (IsPunct(toks[i], "<") && i + 4 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent &&
        kIntrinsicHeaders.count(toks[i + 1].text) != 0 &&
        IsPunct(toks[i + 2], ".") && IsIdent(toks[i + 3], "h") &&
        IsPunct(toks[i + 4], ">")) {
      findings->push_back({path, toks[i].line, "simd-discipline",
                           "<" + toks[i + 1].text + ".h>" + why});
      i += 4;
      continue;
    }
    if (toks[i].kind != TokKind::kIdent) continue;
    if (is_intrinsic_ident(toks[i].text)) {
      findings->push_back(
          {path, toks[i].line, "simd-discipline", toks[i].text + why});
    }
  }
}

/// Concrete uncertainty estimators (docs/UNCERTAINTY.md). Pipeline,
/// serving, and eval code under src/ must go through the
/// UncertaintyEstimator seam — MakeEstimator(model, EstimatorConfig) —
/// so the backend choice stays a config value that threads through
/// TasfarOptions and the serve protocol. Naming a concrete estimator
/// class outside src/uncertainty/ re-couples a layer to one backend;
/// tests and benches may construct concrete estimators to pin
/// backend-specific contracts.
void CheckEstimatorDiscipline(const std::string& path,
                              const std::vector<Token>& toks,
                              std::vector<Finding>* findings) {
  if (path.compare(0, 16, "src/uncertainty/") == 0) return;
  static const std::set<std::string> kConcrete = {
      "McDropoutPredictor", "DeepEnsemble", "LastLayerLaplace"};
  for (const Token& tok : toks) {
    if (tok.kind != TokKind::kIdent || kConcrete.count(tok.text) == 0) {
      continue;
    }
    findings->push_back(
        {path, tok.line, "estimator-discipline",
         tok.text + " is banned outside src/uncertainty/: construct "
                    "through MakeEstimator(model, EstimatorConfig) so the "
                    "uncertainty backend stays pluggable"});
  }
}

void CheckHeaderGuard(const std::string& path, const std::string& code,
                      std::vector<Finding>* findings) {
  const std::string expected = ExpectedHeaderGuard(path);
  std::istringstream lines(code);
  std::string line;
  int lineno = 0;
  int ifndef_line = 0;
  std::string guard;
  while (std::getline(lines, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line.compare(start, 7, "#ifndef") == 0) {
      size_t name_start = line.find_first_not_of(" \t", start + 7);
      if (name_start != std::string::npos) {
        size_t name_end = name_start;
        while (name_end < line.size() && IsIdentChar(line[name_end])) {
          ++name_end;
        }
        guard = line.substr(name_start, name_end - name_start);
        ifndef_line = lineno;
      }
      break;
    }
    if (line.compare(start, 1, "#") == 0) break;  // Any other directive first.
  }
  if (guard.empty()) {
    findings->push_back({path, 1, "header-guard",
                         "missing include guard; expected #ifndef " +
                             expected});
    return;
  }
  if (guard != expected) {
    findings->push_back({path, ifndef_line, "header-guard",
                         "include guard " + guard + " should be named " +
                             expected});
    return;
  }
  if (code.find("#define " + expected) == std::string::npos) {
    findings->push_back({path, ifndef_line, "header-guard",
                         "include guard " + expected +
                             " is never #defined"});
  }
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  // Single implementation in the shared lexer (tools/analyze/lexer.h).
  return analyze::StripCommentsAndStrings(source);
}

std::string ExpectedHeaderGuard(const std::string& repo_rel_path) {
  std::string path = repo_rel_path;
  if (StartsWith(path, "src/")) path = path.substr(4);
  std::string guard = "TASFAR_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

std::vector<Finding> LintSource(const std::string& repo_rel_path,
                                const std::string& source) {
  std::vector<Finding> findings;
  // One lex feeds every rule; comments and literal contents are separate
  // token kinds, so banned names inside them can never match.
  const std::vector<Token> toks = CodeTokens(Lex(source));
  CheckRngDiscipline(repo_rel_path, toks, &findings);
  CheckThreadDiscipline(repo_rel_path, toks, &findings);
  CheckSimdDiscipline(repo_rel_path, toks, &findings);
  if (StartsWith(repo_rel_path, "src/")) {
    CheckNoIostream(repo_rel_path, toks, &findings);
    CheckNoBareAssert(repo_rel_path, toks, &findings);
    CheckTimingDiscipline(repo_rel_path, toks, &findings);
    CheckMemoryDiscipline(repo_rel_path, toks, &findings);
    CheckEstimatorDiscipline(repo_rel_path, toks, &findings);
  }
  const bool is_header = repo_rel_path.size() >= 2 &&
                         repo_rel_path.compare(repo_rel_path.size() - 2, 2,
                                               ".h") == 0;
  if (is_header) CheckHeaderGuard(repo_rel_path, source, &findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return findings;
}

Result<std::vector<Finding>> LintFile(const std::string& repo_root,
                                      const std::string& repo_rel_path) {
  const std::filesystem::path full =
      std::filesystem::path(repo_root) / repo_rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot read " + full.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LintSource(repo_rel_path, buf.str());
}

Result<std::vector<Finding>> LintTree(const std::string& repo_root,
                                      const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<Finding> all;
  for (const std::string& root : roots) {
    const fs::path dir = fs::path(repo_root) / root;
    if (!fs::is_directory(dir)) {
      return Status::NotFound("lint root is not a directory: " +
                              dir.string());
    }
    std::vector<std::string> rel_paths;
    for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (StartsWith(name, "build") || StartsWith(name, ".")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      rel_paths.push_back(
          fs::relative(it->path(), repo_root).generic_string());
    }
    // Deterministic order regardless of directory iteration order.
    std::sort(rel_paths.begin(), rel_paths.end());
    for (const std::string& rel : rel_paths) {
      Result<std::vector<Finding>> one = LintFile(repo_root, rel);
      if (!one.ok()) return one.status();
      all.insert(all.end(), one.value().begin(), one.value().end());
    }
  }
  return all;
}

namespace {

/// Extracts `kName = N` enumerators from the named `enum class` block in
/// raw header text. Returns false when the block is absent.
bool ParseEnumBlock(const std::string& source, const std::string& enum_name,
                    std::map<std::string, int>* out) {
  const std::string needle = "enum class " + enum_name;
  const size_t start = source.find(needle);
  if (start == std::string::npos) return false;
  const size_t open = source.find('{', start);
  const size_t close = source.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  const std::string body = source.substr(open + 1, close - open - 1);
  size_t pos = 0;
  while (pos < body.size()) {
    // Skip to the next identifier start.
    while (pos < body.size() && !IsIdentChar(body[pos])) {
      // Line comments inside the block must not contribute identifiers.
      if (body[pos] == '/' && pos + 1 < body.size() &&
          body[pos + 1] == '/') {
        pos = body.find('\n', pos);
        if (pos == std::string::npos) return true;
      }
      ++pos;
    }
    const size_t name_begin = pos;
    while (pos < body.size() && IsIdentChar(body[pos])) ++pos;
    const std::string name = body.substr(name_begin, pos - name_begin);
    while (pos < body.size() &&
           (body[pos] == ' ' || body[pos] == '\n')) {
      ++pos;
    }
    if (pos >= body.size() || body[pos] != '=') {
      // Enumerator without an explicit value — the doc-sync contract
      // requires every wire value to be spelled out; flag via value -1.
      if (!name.empty() && name[0] == 'k') (*out)[name] = -1;
      continue;
    }
    ++pos;
    while (pos < body.size() && body[pos] == ' ') ++pos;
    int value = 0;
    bool any_digit = false;
    while (pos < body.size() &&
           std::isdigit(static_cast<unsigned char>(body[pos])) != 0) {
      value = value * 10 + (body[pos] - '0');
      any_digit = true;
      ++pos;
    }
    if (!name.empty() && name[0] == 'k' && any_digit) (*out)[name] = value;
  }
  return true;
}

/// Extracts `| \`kName\` | N | ...` table rows from markdown text.
std::map<std::string, int> ParseDocTableRows(const std::string& doc) {
  std::map<std::string, int> rows;
  std::istringstream in(doc);
  std::string line;
  while (std::getline(in, line)) {
    size_t p = 0;
    while (p < line.size() && line[p] == ' ') ++p;
    if (p >= line.size() || line[p] != '|') continue;
    // First cell: `kName`.
    const size_t tick1 = line.find('`', p);
    if (tick1 == std::string::npos) continue;
    const size_t tick2 = line.find('`', tick1 + 1);
    if (tick2 == std::string::npos) continue;
    const std::string name = line.substr(tick1 + 1, tick2 - tick1 - 1);
    if (name.size() < 2 || name[0] != 'k' ||
        std::isupper(static_cast<unsigned char>(name[1])) == 0) {
      continue;
    }
    // Second cell: the wire value.
    const size_t bar = line.find('|', tick2);
    if (bar == std::string::npos) continue;
    size_t q = bar + 1;
    while (q < line.size() && line[q] == ' ') ++q;
    if (q >= line.size() ||
        std::isdigit(static_cast<unsigned char>(line[q])) == 0) {
      continue;
    }
    int value = 0;
    while (q < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[q])) != 0) {
      value = value * 10 + (line[q] - '0');
      ++q;
    }
    rows[name] = value;
  }
  return rows;
}

void SyncOneEnum(const std::string& enum_name,
                 const std::string& header_path,
                 const std::map<std::string, int>& header,
                 const std::map<std::string, int>& doc,
                 std::set<std::string>* doc_names_seen,
                 std::vector<Finding>* findings) {
  for (const auto& [name, value] : header) {
    if (value < 0) {
      findings->push_back({header_path, 0, "protocol-doc-sync",
                           enum_name + "::" + name +
                               " has no explicit wire value"});
      continue;
    }
    auto it = doc.find(name);
    if (it == doc.end()) {
      findings->push_back({"docs/PROTOCOL.md", 0, "protocol-doc-sync",
                           enum_name + "::" + name + " (= " +
                               std::to_string(value) +
                               ") is missing from the doc tables"});
      continue;
    }
    doc_names_seen->insert(name);
    if (it->second != value) {
      findings->push_back(
          {"docs/PROTOCOL.md", 0, "protocol-doc-sync",
           enum_name + "::" + name + " is " + std::to_string(value) +
               " in the header but " + std::to_string(it->second) +
               " in the doc"});
    }
  }
}

}  // namespace

std::vector<Finding> CheckProtocolDocSync(
    const std::string& header_source, const std::string& estimator_source,
    const std::string& doc_source) {
  std::vector<Finding> findings;
  std::map<std::string, int> message_types;
  std::map<std::string, int> wire_errors;
  std::map<std::string, int> backends;
  if (!ParseEnumBlock(header_source, "MessageType", &message_types)) {
    findings.push_back({"src/serve/protocol.h", 0, "protocol-doc-sync",
                        "enum class MessageType not found"});
  }
  if (!ParseEnumBlock(header_source, "WireError", &wire_errors)) {
    findings.push_back({"src/serve/protocol.h", 0, "protocol-doc-sync",
                        "enum class WireError not found"});
  }
  if (!ParseEnumBlock(estimator_source, "UncertaintyBackend", &backends)) {
    findings.push_back({"src/uncertainty/estimator.h", 0,
                        "protocol-doc-sync",
                        "enum class UncertaintyBackend not found"});
  }
  if (!findings.empty()) return findings;

  const std::map<std::string, int> doc_rows = ParseDocTableRows(doc_source);
  std::set<std::string> doc_names_seen;
  SyncOneEnum("MessageType", "src/serve/protocol.h", message_types, doc_rows,
              &doc_names_seen, &findings);
  SyncOneEnum("WireError", "src/serve/protocol.h", wire_errors, doc_rows,
              &doc_names_seen, &findings);
  // kCreateSession's backend byte is defined by the estimator seam's enum;
  // its table in docs/PROTOCOL.md must track it both ways too.
  SyncOneEnum("UncertaintyBackend", "src/uncertainty/estimator.h", backends,
              doc_rows, &doc_names_seen, &findings);
  for (const auto& [name, value] : doc_rows) {
    if (doc_names_seen.count(name) != 0) continue;
    findings.push_back({"docs/PROTOCOL.md", 0, "protocol-doc-sync",
                        "doc table row `" + name + "` (= " +
                            std::to_string(value) +
                            ") matches no protocol.h / estimator.h "
                            "enumerator"});
  }
  return findings;
}

namespace {

/// Field names of `struct F32Kernels` in declaration order: plain pointer
/// members (`const char* name;`) and function-pointer members
/// (`void (*matmul)(...)`). Returns false when the struct is absent.
bool ParseF32KernelsFields(const std::string& header_source,
                           std::vector<std::string>* out) {
  const std::string stripped = StripCommentsAndStrings(header_source);
  const size_t start = stripped.find("struct F32Kernels");
  if (start == std::string::npos) return false;
  const size_t open = stripped.find('{', start);
  // The struct body holds only member declarations — no nested braces —
  // so the first '}' closes it.
  const size_t close = stripped.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  const std::vector<Token> toks =
      CodeTokens(Lex(stripped.substr(open + 1, close - open - 1)));
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    // Function pointer: ( * name )
    if (i >= 2 && IsPunct(toks[i - 1], "*") && IsPunct(toks[i - 2], "(") &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], ")")) {
      out->push_back(toks[i].text);
      continue;
    }
    // Plain pointer member: * name ;
    if (i >= 1 && IsPunct(toks[i - 1], "*") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], ";")) {
      out->push_back(toks[i].text);
    }
  }
  return !out->empty();
}

/// Designated-initializer field names (`.field =`) inside the first
/// F32Kernels brace initializer of a backend translation unit. Returns
/// false when the file contains no F32Kernels initializer.
bool ParseBackendTableFields(const std::string& source,
                             std::vector<std::string>* out) {
  const std::string stripped = StripCommentsAndStrings(source);
  size_t pos = 0;
  while ((pos = stripped.find("F32Kernels", pos)) != std::string::npos) {
    // Find the '=' ... '{' of `static const F32Kernels kTable = {`;
    // skip other mentions (function signatures, return types).
    size_t p = pos + 10;
    while (p < stripped.size() &&
           (std::isspace(static_cast<unsigned char>(stripped[p])) != 0 ||
            IsIdentChar(stripped[p]) || stripped[p] == '&')) {
      ++p;
    }
    if (p >= stripped.size() || stripped[p] != '=') {
      pos += 10;
      continue;
    }
    const size_t open = stripped.find('{', p);
    const size_t close = stripped.find('}', open);
    if (open == std::string::npos || close == std::string::npos) return false;
    const std::vector<Token> toks =
        CodeTokens(Lex(stripped.substr(open + 1, close - open - 1)));
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (IsPunct(toks[i], ".") && toks[i + 1].kind == TokKind::kIdent &&
          IsPunct(toks[i + 2], "=")) {
        out->push_back(toks[i + 1].text);
      }
    }
    return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> CheckSimdKernelTableSync(
    const std::string& header_source,
    const std::vector<std::pair<std::string, std::string>>& backend_sources) {
  const std::string header_path = "src/tensor/simd/kernels.h";
  std::vector<Finding> findings;
  std::vector<std::string> fields;
  if (!ParseF32KernelsFields(header_source, &fields)) {
    findings.push_back({header_path, 0, "simd-discipline",
                        "struct F32Kernels not found (or has no members)"});
    return findings;
  }
  const std::set<std::string> declared(fields.begin(), fields.end());
  for (const auto& [path, source] : backend_sources) {
    std::vector<std::string> set_fields;
    if (!ParseBackendTableFields(source, &set_fields)) {
      findings.push_back(
          {path, 0, "simd-discipline",
           "backend registers no F32Kernels table (expected a designated "
           "initializer naming every kernels.h field)"});
      continue;
    }
    const std::set<std::string> set_set(set_fields.begin(),
                                        set_fields.end());
    for (const std::string& field : fields) {
      if (set_set.count(field) == 0) {
        findings.push_back({path, 0, "simd-discipline",
                            "F32Kernels field `" + field +
                                "` is declared in kernels.h but never set "
                                "in this backend's table"});
      }
    }
    for (const std::string& field : set_fields) {
      if (declared.count(field) == 0) {
        findings.push_back({path, 0, "simd-discipline",
                            "designated initializer `." + field +
                                "` matches no F32Kernels field in "
                                "kernels.h"});
      }
    }
  }
  return findings;
}

std::vector<Finding> CheckSimdKernelTableSyncFiles(
    const std::string& repo_root) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  const fs::path simd_dir = fs::path(repo_root) / "src/tensor/simd";
  auto read = [](const fs::path& p, std::string* out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
  };
  std::string header;
  if (!read(simd_dir / "kernels.h", &header)) {
    findings.push_back({"src/tensor/simd/kernels.h", 0, "simd-discipline",
                        "cannot read the kernel registry header"});
    return findings;
  }
  std::vector<std::pair<std::string, std::string>> backends;
  std::vector<fs::path> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(simd_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, 8, "kernels_") == 0 &&
        entry.path().extension() == ".cc") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::string source;
    const std::string rel = fs::relative(p, repo_root).generic_string();
    if (!read(p, &source)) {
      findings.push_back(
          {rel, 0, "simd-discipline", "cannot read backend source"});
      continue;
    }
    backends.emplace_back(rel, source);
  }
  if (backends.empty()) {
    findings.push_back({"src/tensor/simd", 0, "simd-discipline",
                        "no kernels_*.cc backend translation units found"});
    return findings;
  }
  const std::vector<Finding> sync = CheckSimdKernelTableSync(header, backends);
  findings.insert(findings.end(), sync.begin(), sync.end());
  return findings;
}

std::vector<Finding> CheckProtocolDocSyncFiles(const std::string& repo_root) {
  namespace fs = std::filesystem;
  auto read = [&](const char* rel, std::string* out) {
    std::ifstream in(fs::path(repo_root) / rel, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
  };
  std::string header, estimator, doc;
  std::vector<Finding> findings;
  if (!read("src/serve/protocol.h", &header)) {
    findings.push_back({"src/serve/protocol.h", 0, "protocol-doc-sync",
                        "cannot read the protocol header"});
  }
  if (!read("src/uncertainty/estimator.h", &estimator)) {
    findings.push_back({"src/uncertainty/estimator.h", 0,
                        "protocol-doc-sync",
                        "cannot read the estimator seam header"});
  }
  if (!read("docs/PROTOCOL.md", &doc)) {
    findings.push_back({"docs/PROTOCOL.md", 0, "protocol-doc-sync",
                        "cannot read the protocol spec"});
  }
  if (!findings.empty()) return findings;
  return CheckProtocolDocSync(header, estimator, doc);
}

}  // namespace tasfar::lint
