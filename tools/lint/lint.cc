#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace tasfar::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos]` holds the token `tok` with identifier boundaries on
/// both sides (so "rand" matches neither inside "operand" nor as a prefix of
/// "random_device").
bool TokenStartsAt(const std::string& text, size_t pos,
                   const std::string& tok) {
  if (text.compare(pos, tok.size(), tok) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  const size_t end = pos + tok.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

int LineOfOffset(const std::string& text, size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

/// Whether the parenthesized argument list starting at `open` (which must
/// index a '(') contains only whitespace or one of the null-ish tokens —
/// i.e. a wall-clock `time()` / `time(NULL)` / `time(nullptr)` / `time(0)`
/// call used as a seed.
bool IsNullishArgList(const std::string& text, size_t open) {
  size_t close = text.find(')', open);
  if (close == std::string::npos) return false;
  std::string inner = text.substr(open + 1, close - open - 1);
  inner.erase(std::remove_if(inner.begin(), inner.end(),
                             [](char c) {
                               return std::isspace(
                                          static_cast<unsigned char>(c)) != 0;
                             }),
              inner.end());
  return inner.empty() || inner == "NULL" || inner == "nullptr" ||
         inner == "0";
}

struct BannedToken {
  const char* token;
  const char* why;
};

/// Implicit-RNG primitives. Everything stochastic must draw from an
/// explicitly passed tasfar::Rng& so runs are reproducible.
constexpr BannedToken kBannedRandomTokens[] = {
    {"std::rand", "use an explicitly passed tasfar::Rng& instead"},
    {"std::srand", "use an explicitly passed tasfar::Rng& instead"},
    {"std::random_device", "use an explicitly passed tasfar::Rng& instead"},
    {"std::mt19937", "use an explicitly passed tasfar::Rng& instead"},
    {"std::minstd_rand", "use an explicitly passed tasfar::Rng& instead"},
    {"std::default_random_engine",
     "use an explicitly passed tasfar::Rng& instead"},
    {"random_device", "use an explicitly passed tasfar::Rng& instead"},
    {"mt19937", "use an explicitly passed tasfar::Rng& instead"},
};

void CheckRngDiscipline(const std::string& path, const std::string& code,
                        std::vector<Finding>* findings) {
  for (const BannedToken& banned : kBannedRandomTokens) {
    const std::string tok(banned.token);
    for (size_t pos = code.find(tok); pos != std::string::npos;
         pos = code.find(tok, pos + 1)) {
      if (!TokenStartsAt(code, pos, tok)) continue;
      // Skip "random_device" / "mt19937" already reported via the
      // std::-qualified form at the same site.
      if (pos >= 2 && code.compare(pos - 2, 2, "::") == 0) continue;
      findings->push_back({path, LineOfOffset(code, pos), "rng-discipline",
                           tok + " is banned: " + banned.why});
    }
  }
  // Bare rand( / srand( from <cstdlib>.
  for (const char* fn : {"rand", "srand"}) {
    const std::string tok(fn);
    for (size_t pos = code.find(tok); pos != std::string::npos;
         pos = code.find(tok, pos + 1)) {
      if (!TokenStartsAt(code, pos, tok)) continue;
      if (pos >= 2 && code.compare(pos - 2, 2, "::") == 0) continue;
      size_t after = code.find_first_not_of(" \t", pos + tok.size());
      if (after == std::string::npos || code[after] != '(') continue;
      findings->push_back({path, LineOfOffset(code, pos), "rng-discipline",
                           tok + "() is banned: use an explicitly passed "
                                 "tasfar::Rng& instead"});
    }
  }
  // Argless time() as an entropy source.
  const std::string time_tok = "time";
  for (size_t pos = code.find(time_tok); pos != std::string::npos;
       pos = code.find(time_tok, pos + 1)) {
    if (!TokenStartsAt(code, pos, time_tok)) continue;
    size_t after = code.find_first_not_of(" \t", pos + time_tok.size());
    if (after == std::string::npos || code[after] != '(') continue;
    if (!IsNullishArgList(code, after)) continue;
    findings->push_back({path, LineOfOffset(code, pos), "rng-discipline",
                         "wall-clock time() seeding is banned: pass a fixed "
                         "seed through tasfar::Rng"});
  }
}

/// Raw threading primitives. All parallelism must flow through the
/// ThreadPool / ParallelFor substrate so the determinism contract of
/// docs/THREADING.md (same seed + any thread count ⇒ identical output)
/// holds repo-wide; only the substrate itself may spawn threads.
constexpr BannedToken kBannedThreadTokens[] = {
    {"std::thread",
     "use ThreadPool / ParallelFor from util/thread_pool.h instead"},
    {"std::jthread",
     "use ThreadPool / ParallelFor from util/thread_pool.h instead"},
    {"std::async",
     "use ThreadPool / ParallelFor from util/thread_pool.h instead"},
};

void CheckThreadDiscipline(const std::string& path, const std::string& code,
                           std::vector<Finding>* findings) {
  if (path == "src/util/thread_pool.h" || path == "src/util/thread_pool.cc") {
    return;
  }
  for (const BannedToken& banned : kBannedThreadTokens) {
    const std::string tok(banned.token);
    for (size_t pos = code.find(tok); pos != std::string::npos;
         pos = code.find(tok, pos + 1)) {
      if (!TokenStartsAt(code, pos, tok)) continue;
      findings->push_back({path, LineOfOffset(code, pos),
                           "thread-discipline",
                           tok + " is banned: " + banned.why});
    }
  }
}

/// Ad-hoc timing. All clock reads in library code must go through
/// src/obs/ (obs::MonotonicMicros / TASFAR_TRACE_SPAN / the metrics
/// registry) so stage timings land in one observable place instead of
/// scattered std::chrono stopwatches; only src/obs/ itself may touch the
/// clock.
void CheckTimingDiscipline(const std::string& path, const std::string& code,
                           std::vector<Finding>* findings) {
  if (path.compare(0, 8, "src/obs/") == 0) return;
  const std::string tok = "chrono";
  for (size_t pos = code.find(tok); pos != std::string::npos;
       pos = code.find(tok, pos + 1)) {
    if (!TokenStartsAt(code, pos, tok)) continue;
    // `<chrono>` is reported (once) by the include check below.
    if (pos > 0 && code[pos - 1] == '<') continue;
    findings->push_back(
        {path, LineOfOffset(code, pos), "timing-discipline",
         "std::chrono is banned in src/ outside src/obs/: time through "
         "obs::MonotonicMicros / TASFAR_TRACE_SPAN instead"});
  }
  for (size_t pos = code.find("#include"); pos != std::string::npos;
       pos = code.find("#include", pos + 1)) {
    size_t lt = code.find_first_not_of(" \t", pos + 8);
    if (lt == std::string::npos) continue;
    if (code.compare(lt, 8, "<chrono>") == 0) {
      findings->push_back(
          {path, LineOfOffset(code, pos), "timing-discipline",
           "<chrono> is banned in src/ outside src/obs/: time through "
           "obs::MonotonicMicros / TASFAR_TRACE_SPAN instead"});
    }
  }
}

void CheckNoIostream(const std::string& path, const std::string& code,
                     std::vector<Finding>* findings) {
  for (size_t pos = code.find("#include"); pos != std::string::npos;
       pos = code.find("#include", pos + 1)) {
    size_t lt = code.find_first_not_of(" \t", pos + 8);
    if (lt == std::string::npos) continue;
    if (code.compare(lt, 10, "<iostream>") == 0) {
      findings->push_back({path, LineOfOffset(code, pos), "no-iostream",
                           "<iostream> is banned in src/: use "
                           "util/logging.h (TASFAR_LOG) instead"});
    }
  }
}

void CheckNoBareAssert(const std::string& path, const std::string& code,
                       std::vector<Finding>* findings) {
  for (const char* header : {"<cassert>", "<assert.h>"}) {
    const std::string h(header);
    for (size_t pos = code.find(h); pos != std::string::npos;
         pos = code.find(h, pos + 1)) {
      findings->push_back({path, LineOfOffset(code, pos), "check-not-assert",
                           h + " is banned in src/: use util/check.h "
                               "(TASFAR_CHECK) instead"});
    }
  }
  const std::string tok = "assert";
  for (size_t pos = code.find(tok); pos != std::string::npos;
       pos = code.find(tok, pos + 1)) {
    if (!TokenStartsAt(code, pos, tok)) continue;
    size_t after = code.find_first_not_of(" \t", pos + tok.size());
    if (after == std::string::npos || code[after] != '(') continue;
    findings->push_back({path, LineOfOffset(code, pos), "check-not-assert",
                         "bare assert() is banned in src/: use TASFAR_CHECK "
                         "(active in all build modes) instead"});
  }
}

/// Memory discipline (docs/MEMORY.md). Two bans, both src/-only:
///
/// 1. By-value `Tensor` parameters. Tensor copies are cheap O(1) shares,
///    but a by-value parameter detaches (copies the whole buffer) on the
///    callee's first write and hides that cost at every call site; APIs
///    must take `const Tensor&` (read) or `Tensor*` (write).
/// 2. `std::vector<double>(... .data() ...)` constructions — copying a
///    tensor's storage into a fresh vector. Share the Tensor
///    (copy-on-write) or fill a Workspace tensor instead. src/tensor/ is
///    exempt: the copy-on-write detach itself is implemented this way.
void CheckMemoryDiscipline(const std::string& path, const std::string& code,
                           std::vector<Finding>* findings) {
  const std::string tok = "Tensor";
  for (size_t pos = code.find(tok); pos != std::string::npos;
       pos = code.find(tok, pos + 1)) {
    if (!TokenStartsAt(code, pos, tok)) continue;
    // Parameter position: the previous token (skipping whitespace and an
    // optional `const`) must be '(' or ','.
    size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
      --before;
    }
    if (before >= 5 && code.compare(before - 5, 5, "const") == 0 &&
        (before == 5 || !IsIdentChar(code[before - 6]))) {
      before -= 5;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1])) !=
                 0) {
        --before;
      }
    }
    if (before == 0 || (code[before - 1] != '(' && code[before - 1] != ','))
      continue;
    // By-value means the next token is the parameter name: an identifier
    // (not '&' / '*' / '(' / '<' / ':'), followed by ',', ')' or '='.
    size_t after = code.find_first_not_of(" \t\n", pos + tok.size());
    if (after == std::string::npos || !IsIdentChar(code[after])) continue;
    size_t name_end = after;
    while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
    size_t delim = code.find_first_not_of(" \t\n", name_end);
    if (delim == std::string::npos ||
        (code[delim] != ',' && code[delim] != ')' && code[delim] != '=')) {
      continue;
    }
    findings->push_back(
        {path, LineOfOffset(code, pos), "memory-discipline",
         "by-value Tensor parameter: take const Tensor& (read) or Tensor* "
         "(write) — a by-value copy detaches on first write"});
  }
  if (path.compare(0, 11, "src/tensor/") == 0) return;
  const std::string vec = "std::vector<double>";
  for (size_t pos = code.find(vec); pos != std::string::npos;
       pos = code.find(vec, pos + vec.size())) {
    size_t open = code.find_first_not_of(" \t\n", pos + vec.size());
    if (open == std::string::npos || code[open] != '(') continue;
    size_t depth = 1, j = open + 1;
    while (j < code.size() && depth > 0) {
      if (code[j] == '(') ++depth;
      if (code[j] == ')') --depth;
      ++j;
    }
    if (code.substr(open, j - open).find(".data(") == std::string::npos) {
      continue;
    }
    findings->push_back(
        {path, LineOfOffset(code, pos), "memory-discipline",
         "copying tensor storage into a std::vector<double>: share the "
         "Tensor (copy-on-write) or fill a Workspace tensor instead"});
  }
}

void CheckHeaderGuard(const std::string& path, const std::string& code,
                      std::vector<Finding>* findings) {
  const std::string expected = ExpectedHeaderGuard(path);
  std::istringstream lines(code);
  std::string line;
  int lineno = 0;
  int ifndef_line = 0;
  std::string guard;
  while (std::getline(lines, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line.compare(start, 7, "#ifndef") == 0) {
      size_t name_start = line.find_first_not_of(" \t", start + 7);
      if (name_start != std::string::npos) {
        size_t name_end = name_start;
        while (name_end < line.size() && IsIdentChar(line[name_end])) {
          ++name_end;
        }
        guard = line.substr(name_start, name_end - name_start);
        ifndef_line = lineno;
      }
      break;
    }
    if (line.compare(start, 1, "#") == 0) break;  // Any other directive first.
  }
  if (guard.empty()) {
    findings->push_back({path, 1, "header-guard",
                         "missing include guard; expected #ifndef " +
                             expected});
    return;
  }
  if (guard != expected) {
    findings->push_back({path, ifndef_line, "header-guard",
                         "include guard " + guard + " should be named " +
                             expected});
    return;
  }
  if (code.find("#define " + expected) == std::string::npos) {
    findings->push_back({path, ifndef_line, "header-guard",
                         "include guard " + expected +
                             " is never #defined"});
  }
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  size_t i = 0;
  const size_t n = source.size();
  auto blank = [&out](size_t from, size_t to) {
    for (size_t k = from; k < to && k < out.size(); ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    char c = source[i];
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t end = source.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim".
      size_t open = source.find('(', i + 2);
      if (open == std::string::npos) {
        ++i;
        continue;
      }
      const std::string delim = source.substr(i + 2, open - (i + 2));
      size_t end = source.find(")" + delim + "\"", open + 1);
      end = (end == std::string::npos) ? n : end + delim.size() + 2;
      blank(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      size_t j = i + 1;
      while (j < n && source[j] != c) {
        j += (source[j] == '\\') ? 2 : 1;
      }
      size_t end = (j < n) ? j + 1 : n;
      blank(i, end);
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

std::string ExpectedHeaderGuard(const std::string& repo_rel_path) {
  std::string path = repo_rel_path;
  if (StartsWith(path, "src/")) path = path.substr(4);
  std::string guard = "TASFAR_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

std::vector<Finding> LintSource(const std::string& repo_rel_path,
                                const std::string& source) {
  std::vector<Finding> findings;
  const std::string code = StripCommentsAndStrings(source);
  CheckRngDiscipline(repo_rel_path, code, &findings);
  CheckThreadDiscipline(repo_rel_path, code, &findings);
  if (StartsWith(repo_rel_path, "src/")) {
    CheckNoIostream(repo_rel_path, code, &findings);
    CheckNoBareAssert(repo_rel_path, code, &findings);
    CheckTimingDiscipline(repo_rel_path, code, &findings);
    CheckMemoryDiscipline(repo_rel_path, code, &findings);
  }
  const bool is_header = repo_rel_path.size() >= 2 &&
                         repo_rel_path.compare(repo_rel_path.size() - 2, 2,
                                               ".h") == 0;
  if (is_header) CheckHeaderGuard(repo_rel_path, source, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

Result<std::vector<Finding>> LintFile(const std::string& repo_root,
                                      const std::string& repo_rel_path) {
  const std::filesystem::path full =
      std::filesystem::path(repo_root) / repo_rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot read " + full.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LintSource(repo_rel_path, buf.str());
}

Result<std::vector<Finding>> LintTree(const std::string& repo_root,
                                      const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<Finding> all;
  for (const std::string& root : roots) {
    const fs::path dir = fs::path(repo_root) / root;
    if (!fs::is_directory(dir)) {
      return Status::NotFound("lint root is not a directory: " +
                              dir.string());
    }
    std::vector<std::string> rel_paths;
    for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (StartsWith(name, "build") || StartsWith(name, ".")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      rel_paths.push_back(
          fs::relative(it->path(), repo_root).generic_string());
    }
    // Deterministic order regardless of directory iteration order.
    std::sort(rel_paths.begin(), rel_paths.end());
    for (const std::string& rel : rel_paths) {
      Result<std::vector<Finding>> one = LintFile(repo_root, rel);
      if (!one.ok()) return one.status();
      all.insert(all.end(), one.value().begin(), one.value().end());
    }
  }
  return all;
}

}  // namespace tasfar::lint
