#ifndef TASFAR_TOOLS_LINT_LINT_H_
#define TASFAR_TOOLS_LINT_LINT_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tasfar::lint {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;  ///< Repo-relative path.
  int line;          ///< 1-based line number (0 when file-scoped).
  std::string rule;  ///< Stable rule id, e.g. "rng-discipline".
  std::string message;

  bool operator==(const Finding& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

/// Replaces the contents of comments (// and /* */), string literals
/// (including raw strings), and character literals with spaces, preserving
/// newlines so that line numbers of the remaining code are unchanged. Rules
/// match against the stripped text, so a banned token mentioned in a comment
/// or string is not a violation.
std::string StripCommentsAndStrings(const std::string& source);

/// The include-guard macro required for a header at `repo_rel_path`:
/// TASFAR_<PATH>_H_ with the path uppercased and separators mapped to '_'.
/// Paths under src/ drop the src/ prefix (src/util/rng.h ->
/// TASFAR_UTIL_RNG_H_); all other roots keep it (bench/bench_common.h ->
/// TASFAR_BENCH_BENCH_COMMON_H_).
std::string ExpectedHeaderGuard(const std::string& repo_rel_path);

/// Runs every applicable rule over one file's contents. `repo_rel_path`
/// selects the rule set: the iostream and assert bans, the
/// timing-discipline ban, the memory-discipline ban (by-value Tensor
/// parameters; tensor-storage copies into std::vector<double>, with
/// src/tensor/ exempt), and the estimator-discipline ban (concrete
/// UncertaintyEstimator classes outside src/uncertainty/ — construct via
/// MakeEstimator) apply only under src/; the RNG-discipline ban, the
/// thread-discipline ban (raw std::thread / std::jthread / std::async
/// anywhere but src/util/thread_pool.*), the simd-discipline ban (raw
/// vector intrinsics anywhere but src/tensor/simd/), and the header-guard
/// check apply everywhere.
std::vector<Finding> LintSource(const std::string& repo_rel_path,
                                const std::string& source);

/// Lints one file on disk (path = repo_root / repo_rel_path).
Result<std::vector<Finding>> LintFile(const std::string& repo_root,
                                      const std::string& repo_rel_path);

/// Recursively lints every .h/.cc/.cpp file under the given roots
/// (repo-relative directories, e.g. {"src", "tests"}). Skips anything under
/// a directory whose name starts with "build". Roots that do not exist are
/// an error.
Result<std::vector<Finding>> LintTree(const std::string& repo_root,
                                      const std::vector<std::string>& roots);

/// Rule "protocol-doc-sync": cross-checks the `MessageType` and `WireError`
/// enumerators in src/serve/protocol.h, plus the `UncertaintyBackend`
/// enumerators in src/uncertainty/estimator.h (kCreateSession's backend
/// byte), against the tables in docs/PROTOCOL.md, both ways — an
/// enumerator missing from the doc, a doc row naming no enumerator, or a
/// numeric value disagreement each yield a finding. Header enumerators are
/// `kName = N` inside the `enum class` blocks; doc entries are table rows
/// whose first cell is the backticked enumerator and whose second cell is
/// its wire value.
std::vector<Finding> CheckProtocolDocSync(const std::string& header_source,
                                          const std::string& estimator_source,
                                          const std::string& doc_source);

/// Reads src/serve/protocol.h, src/uncertainty/estimator.h, and
/// docs/PROTOCOL.md under `repo_root` and runs CheckProtocolDocSync; a
/// missing file is itself a finding (the doc and the headers must ship
/// together).
std::vector<Finding> CheckProtocolDocSyncFiles(const std::string& repo_root);

/// Rule "simd-discipline", repo-level half: cross-checks the `F32Kernels`
/// dispatch-table fields declared in src/tensor/simd/kernels.h against the
/// designated initializers in every backend translation unit
/// (`kernels_<backend>.cc`), both ways — a struct field a backend never
/// sets, a backend setting a field the struct does not declare, or a
/// backend file containing no F32Kernels table at all each yield a
/// finding. `backend_sources` pairs each backend's repo-relative path with
/// its contents.
std::vector<Finding> CheckSimdKernelTableSync(
    const std::string& header_source,
    const std::vector<std::pair<std::string, std::string>>& backend_sources);

/// Reads src/tensor/simd/kernels.h and every src/tensor/simd/kernels_*.cc
/// under `repo_root` and runs CheckSimdKernelTableSync; a missing header
/// or an empty backend set is itself a finding.
std::vector<Finding> CheckSimdKernelTableSyncFiles(
    const std::string& repo_root);

}  // namespace tasfar::lint

#endif  // TASFAR_TOOLS_LINT_LINT_H_
