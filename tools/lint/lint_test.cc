#include "lint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace tasfar::lint {
namespace {

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

// --- StripCommentsAndStrings ------------------------------------------------

TEST(StripTest, RemovesLineComments) {
  const std::string out =
      StripCommentsAndStrings("int x;  // std::rand here\nint y;");
  EXPECT_EQ(out.find("std::rand"), std::string::npos);
  EXPECT_NE(out.find("int y;"), std::string::npos);
}

TEST(StripTest, RemovesBlockCommentsButKeepsNewlines) {
  const std::string out =
      StripCommentsAndStrings("a /* std::rand\nstd::rand */ b");
  EXPECT_EQ(out.find("std::rand"), std::string::npos);
  // The newline inside the comment survives so line numbers stay stable.
  EXPECT_NE(out.find('\n'), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(StripTest, RemovesStringAndCharLiterals) {
  const std::string out = StripCommentsAndStrings(
      "f(\"std::rand\"); g('\\\"'); h(\"esc\\\"std::rand\");");
  EXPECT_EQ(out.find("std::rand"), std::string::npos);
}

TEST(StripTest, RemovesRawStrings) {
  const std::string out =
      StripCommentsAndStrings("auto s = R\"(std::rand \" )\"; int k;");
  EXPECT_EQ(out.find("std::rand"), std::string::npos);
  EXPECT_NE(out.find("int k;"), std::string::npos);
}

TEST(StripTest, KeepsCodeIntact) {
  const std::string src = "int dividend = a / b; int c = a / *p;";
  EXPECT_EQ(StripCommentsAndStrings(src), src);
}

// --- rng-discipline ---------------------------------------------------------

TEST(RngDisciplineTest, FlagsStdRand) {
  const auto findings = LintSource("src/foo.cc", "int x = std::rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(RngDisciplineTest, FlagsBareRandCall) {
  const auto findings = LintSource("tests/foo_test.cc", "int x = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
}

TEST(RngDisciplineTest, FlagsMt19937AndRandomDevice) {
  const auto findings = LintSource(
      "bench/foo.cc", "std::mt19937 gen(std::random_device{}());\n");
  EXPECT_EQ(findings.size(), 2u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "rng-discipline");
}

TEST(RngDisciplineTest, FlagsUnqualifiedMt19937) {
  const auto findings =
      LintSource("src/foo.cc", "using std::mt19937;\nmt19937 gen;\n");
  EXPECT_EQ(findings.size(), 2u);
}

TEST(RngDisciplineTest, FlagsArglessTimeSeeding) {
  EXPECT_EQ(LintSource("src/a.cc", "seed(time(NULL));\n").size(), 1u);
  EXPECT_EQ(LintSource("src/a.cc", "seed(time(nullptr));\n").size(), 1u);
  EXPECT_EQ(LintSource("src/a.cc", "seed(time( 0 ));\n").size(), 1u);
  EXPECT_EQ(LintSource("src/a.cc", "seed(std::time(nullptr));\n").size(), 1u);
}

TEST(RngDisciplineTest, AllowsTimeWithRealArgument) {
  EXPECT_TRUE(LintSource("src/a.cc", "time_t t; time(&t);\n").empty());
}

TEST(RngDisciplineTest, NoFalsePositiveOnSubstrings) {
  // "rand" inside identifiers, Rng usage, and elapsed-time helpers are fine.
  const std::string src =
      "int operand = 1;\n"
      "double r = rng.Uniform();\n"
      "double elapsed_time(int x);\n"
      "my_rand_helper();\n";
  EXPECT_TRUE(LintSource("src/foo.cc", src).empty());
}

TEST(RngDisciplineTest, IgnoresCommentsAndStrings) {
  const std::string src =
      "// std::rand is banned\n"
      "const char* msg = \"std::mt19937\";\n";
  EXPECT_TRUE(LintSource("src/foo.cc", src).empty());
}

TEST(RngDisciplineTest, AppliesOutsideSrcToo) {
  EXPECT_EQ(LintSource("examples/demo.cpp", "std::rand();\n").size(), 1u);
  EXPECT_EQ(LintSource("tools/gen.cc", "std::rand();\n").size(), 1u);
}

// --- thread-discipline ------------------------------------------------------

TEST(ThreadDisciplineTest, FlagsRawStdThread) {
  const auto findings =
      LintSource("src/core/foo.cc", "std::thread t([]{});\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "thread-discipline");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(ThreadDisciplineTest, FlagsJthreadAndAsync) {
  const auto findings = LintSource(
      "bench/foo.cc", "std::jthread t([]{});\nauto f = std::async([]{});\n");
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "thread-discipline");
  }
}

TEST(ThreadDisciplineTest, AppliesOutsideSrcToo) {
  EXPECT_EQ(LintSource("tests/foo_test.cc", "std::thread t;\n").size(), 1u);
  EXPECT_EQ(LintSource("examples/demo.cpp", "std::thread t;\n").size(), 1u);
}

TEST(ThreadDisciplineTest, AllowsThreadPoolImplementation) {
  EXPECT_TRUE(LintSource("src/util/thread_pool.cc",
                         "workers_.emplace_back(std::thread([]{}));\n")
                  .empty());
  // The .h snippet still gets the header-guard rule; only the
  // thread-discipline exemption is under test here.
  for (const Finding& f :
       LintSource("src/util/thread_pool.h",
                  "std::vector<std::thread> workers_;\n")) {
    EXPECT_NE(f.rule, "thread-discipline");
  }
}

TEST(ThreadDisciplineTest, AllowsThisThreadAndThreadPool) {
  // std::this_thread (sleep/yield) and our own ThreadPool are fine; so is
  // the word "thread" in identifiers.
  EXPECT_TRUE(LintSource("src/core/foo.cc",
                         "std::this_thread::yield();\n"
                         "ThreadPool pool(4);\n"
                         "size_t num_threads = 2;\n")
                  .empty());
}

TEST(ThreadDisciplineTest, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(LintSource("src/core/foo.cc",
                         "// std::thread is banned here\n"
                         "const char* s = \"std::thread\";\n")
                  .empty());
}

// --- no-iostream ------------------------------------------------------------

TEST(NoIostreamTest, FlagsIostreamInSrc) {
  const auto findings =
      LintSource("src/core/foo.cc", "#include <iostream>\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-iostream");
}

TEST(NoIostreamTest, AllowsIostreamOutsideSrc) {
  EXPECT_TRUE(
      LintSource("examples/demo.cpp", "#include <iostream>\n").empty());
  EXPECT_TRUE(
      LintSource("tests/foo_test.cc", "#include <iostream>\n").empty());
}

TEST(NoIostreamTest, AllowsOtherStreamHeadersInSrc) {
  EXPECT_TRUE(LintSource("src/foo.cc",
                         "#include <sstream>\n#include <fstream>\n")
                  .empty());
}

// --- check-not-assert -------------------------------------------------------

TEST(CheckNotAssertTest, FlagsAssertCallAndHeaderInSrc) {
  const auto findings = LintSource(
      "src/foo.cc", "#include <cassert>\nvoid f() { assert(1 == 1); }\n");
  EXPECT_EQ(Rules(findings),
            (std::vector<std::string>{"check-not-assert",
                                      "check-not-assert"}));
}

TEST(CheckNotAssertTest, AllowsTasfarCheckAndStaticAssert) {
  const std::string src =
      "TASFAR_CHECK(x > 0);\n"
      "static_assert(sizeof(int) == 4);\n";
  EXPECT_TRUE(LintSource("src/foo.cc", src).empty());
}

TEST(CheckNotAssertTest, AllowsAssertOutsideSrc) {
  EXPECT_TRUE(LintSource("tests/foo_test.cc", "assert(true);\n").empty());
}

// --- timing-discipline ------------------------------------------------------

TEST(TimingDisciplineTest, FlagsStdChronoInSrc) {
  const auto findings = LintSource(
      "src/core/foo.cc",
      "auto t0 = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "timing-discipline");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(TimingDisciplineTest, FlagsChronoIncludeOnce) {
  const auto findings =
      LintSource("src/util/foo.cc", "#include <chrono>\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "timing-discipline");
}

TEST(TimingDisciplineTest, AllowsChronoInObs) {
  EXPECT_TRUE(LintSource("src/obs/clock.cc",
                         "#include <chrono>\n"
                         "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(TimingDisciplineTest, AllowsChronoOutsideSrc) {
  EXPECT_TRUE(LintSource("bench/foo.cc",
                         "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  EXPECT_TRUE(
      LintSource("tests/foo_test.cc", "#include <chrono>\n").empty());
}

TEST(TimingDisciplineTest, NoFalsePositiveOnIdentifiers) {
  EXPECT_TRUE(LintSource("src/core/foo.cc",
                         "int chronology = 1;\n"
                         "double my_chrono_like = 2.0;\n")
                  .empty());
}

TEST(TimingDisciplineTest, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(LintSource("src/core/foo.cc",
                         "// std::chrono would be banned here\n"
                         "const char* s = \"std::chrono\";\n")
                  .empty());
}

// --- memory-discipline ------------------------------------------------------

TEST(MemoryDisciplineTest, FlagsByValueTensorParam) {
  const auto findings =
      LintSource("src/nn/foo.cc", "Tensor Forward(Tensor input);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "memory-discipline");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(MemoryDisciplineTest, FlagsConstByValueAndSecondParam) {
  const auto findings = LintSource(
      "src/nn/foo.cc", "void F(const Tensor t);\nvoid G(int n, Tensor t);\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
}

TEST(MemoryDisciplineTest, AllowsReferenceAndPointerParams) {
  EXPECT_TRUE(LintSource("src/nn/foo.cc",
                         "Tensor F(const Tensor& a, Tensor* out);\n"
                         "void G(Tensor& inout, const Tensor* p);\n")
                  .empty());
}

TEST(MemoryDisciplineTest, AllowsLocalsReturnsAndTemplates) {
  EXPECT_TRUE(LintSource("src/nn/foo.cc",
                         "Tensor F();\n"
                         "void G() {\n"
                         "  Tensor local = F();\n"
                         "  std::vector<Tensor> all;\n"
                         "  H(Tensor({2, 2}));\n"
                         "}\n")
                  .empty());
}

TEST(MemoryDisciplineTest, FlagsVectorCopyOfTensorData) {
  const auto findings = LintSource(
      "src/nn/foo.cc",
      "std::vector<double> v(std::vector<double>(t.data(), t.data() + "
      "t.size()));\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "memory-discipline");
}

TEST(MemoryDisciplineTest, AllowsVectorWithoutTensorData) {
  EXPECT_TRUE(
      LintSource("src/nn/foo.cc", "std::vector<double> v(n, 0.0);\n")
          .empty());
}

TEST(MemoryDisciplineTest, ExemptsTensorInternalsFromCopyBan) {
  EXPECT_TRUE(LintSource("src/tensor/tensor.cc",
                         "auto v = std::vector<double>(src.data(), "
                         "src.data() + n);\n")
                  .empty());
}

TEST(MemoryDisciplineTest, NotAppliedOutsideSrc) {
  EXPECT_TRUE(
      LintSource("tests/nn/foo_test.cc", "void F(Tensor by_value);\n")
          .empty());
}

// --- estimator-discipline ---------------------------------------------------

TEST(EstimatorDisciplineTest, FlagsConcreteEstimatorsInSrc) {
  const auto findings = LintSource(
      "src/core/tasfar.cc",
      "McDropoutPredictor p(model, 20);\n"
      "auto e = DeepEnsemble::FromSource(model, 5, seed);\n"
      "LastLayerLaplace l(model);\n");
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "estimator-discipline");
    EXPECT_NE(f.message.find("MakeEstimator"), std::string::npos);
  }
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 3);
}

TEST(EstimatorDisciplineTest, AllowsTheSeamItself) {
  EXPECT_TRUE(LintSource("src/uncertainty/estimator.cc",
                         "return std::make_unique<McDropoutPredictor>(\n"
                         "    model, config.mc_samples);\n")
                  .empty());
}

TEST(EstimatorDisciplineTest, AllowsSeamTypesAndEnumerators) {
  // The abstract interface, the factory, and backend enumerators are how
  // the rest of src/ is *supposed* to talk about estimators.
  EXPECT_TRUE(
      LintSource("src/serve/session.cc",
                 "std::unique_ptr<UncertaintyEstimator> e =\n"
                 "    MakeEstimator(model, config);\n"
                 "if (b == UncertaintyBackend::kDeepEnsemble) { Charge(); }\n")
          .empty());
}

TEST(EstimatorDisciplineTest, NotAppliedOutsideSrc) {
  EXPECT_TRUE(LintSource("tests/uncertainty/ensemble_test.cc",
                         "DeepEnsemble e = DeepEnsemble::FromSource(m, 5, 1);\n")
                  .empty());
  EXPECT_TRUE(
      LintSource("bench/bench_micro_core.cc", "LastLayerLaplace l(&model);\n")
          .empty());
}

TEST(EstimatorDisciplineTest, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(LintSource("src/core/foo.cc",
                         "// McDropoutPredictor would be banned here\n"
                         "const char* s = \"DeepEnsemble\";\n")
                  .empty());
}

// --- header-guard -----------------------------------------------------------

TEST(HeaderGuardTest, ExpectedGuardDropsSrcPrefix) {
  EXPECT_EQ(ExpectedHeaderGuard("src/util/rng.h"), "TASFAR_UTIL_RNG_H_");
  EXPECT_EQ(ExpectedHeaderGuard("src/core/partitioner.h"),
            "TASFAR_CORE_PARTITIONER_H_");
}

TEST(HeaderGuardTest, ExpectedGuardKeepsNonSrcRoots) {
  EXPECT_EQ(ExpectedHeaderGuard("bench/bench_common.h"),
            "TASFAR_BENCH_BENCH_COMMON_H_");
  EXPECT_EQ(ExpectedHeaderGuard("tools/lint/lint.h"),
            "TASFAR_TOOLS_LINT_LINT_H_");
}

TEST(HeaderGuardTest, AcceptsCorrectGuard) {
  const std::string src =
      "#ifndef TASFAR_UTIL_FOO_H_\n"
      "#define TASFAR_UTIL_FOO_H_\n"
      "#endif  // TASFAR_UTIL_FOO_H_\n";
  EXPECT_TRUE(LintSource("src/util/foo.h", src).empty());
}

TEST(HeaderGuardTest, FlagsMissingGuard) {
  const auto findings = LintSource("src/util/foo.h", "int x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-guard");
}

TEST(HeaderGuardTest, FlagsWrongGuardName) {
  const std::string src =
      "#ifndef FOO_H\n#define FOO_H\n#endif\n";
  const auto findings = LintSource("src/util/foo.h", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("TASFAR_UTIL_FOO_H_"),
            std::string::npos);
}

TEST(HeaderGuardTest, FlagsGuardNeverDefined) {
  const std::string src = "#ifndef TASFAR_UTIL_FOO_H_\nint x;\n#endif\n";
  const auto findings = LintSource("src/util/foo.h", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("never #defined"), std::string::npos);
}

TEST(HeaderGuardTest, SkipsNonHeaderFiles) {
  EXPECT_TRUE(LintSource("src/util/foo.cc", "int x;\n").empty());
}

// --- ordering ---------------------------------------------------------------

TEST(LintSourceTest, FindingsSortedByLine) {
  const std::string src =
      "int a = 1;\n"
      "std::mt19937 g;\n"
      "int b = std::rand();\n";
  const auto findings = LintSource("src/foo.cc", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
}

// --- protocol-doc-sync ------------------------------------------------------

namespace {

// Minimal header/doc pair that is in sync; tests below perturb one side.
const char kSyncedHeader[] =
    "enum class MessageType : std::uint16_t {\n"
    "  kCreateSession = 1,\n"
    "  kPing = 10,\n"
    "  kOkResponse = 128,\n"
    "};\n"
    "enum class WireError : std::uint16_t {\n"
    "  kBadRequest = 1,\n"
    "};\n";

// The estimator seam's backend enum rides the same doc-sync rule: its
// values are kCreateSession's backend byte.
const char kSyncedEstimatorHeader[] =
    "enum class UncertaintyBackend : uint8_t {\n"
    "  kMcDropout = 0,\n"
    "  kDeepEnsemble = 1,\n"
    "};\n";

const char kSyncedDoc[] =
    "| Message | Value |\n"
    "|---------|-------|\n"
    "| `kCreateSession` | 1 |\n"
    "| `kPing` | 10 |\n"
    "| `kOkResponse` | 128 |\n"
    "\n"
    "| Error | Value |\n"
    "| `kBadRequest` | 1 |\n"
    "\n"
    "| Backend | Value |\n"
    "| `kMcDropout` | 0 |\n"
    "| `kDeepEnsemble` | 1 |\n";

}  // namespace

TEST(ProtocolDocSyncTest, CleanWhenInSync) {
  EXPECT_TRUE(CheckProtocolDocSync(kSyncedHeader, kSyncedEstimatorHeader,
                                   kSyncedDoc)
                  .empty());
}

TEST(ProtocolDocSyncTest, FlagsEnumeratorMissingFromDoc) {
  std::string doc(kSyncedDoc);
  doc.erase(doc.find("| `kPing` | 10 |\n"), sizeof("| `kPing` | 10 |\n") - 1);
  const auto findings =
      CheckProtocolDocSync(kSyncedHeader, kSyncedEstimatorHeader, doc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "protocol-doc-sync");
  EXPECT_NE(findings[0].message.find("kPing"), std::string::npos);
}

TEST(ProtocolDocSyncTest, FlagsValueDisagreement) {
  std::string doc(kSyncedDoc);
  doc.replace(doc.find("| `kPing` | 10 |"), sizeof("| `kPing` | 10 |") - 1,
              "| `kPing` | 11 |");
  const auto findings =
      CheckProtocolDocSync(kSyncedHeader, kSyncedEstimatorHeader, doc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kPing"), std::string::npos);
  EXPECT_NE(findings[0].message.find("10"), std::string::npos);
  EXPECT_NE(findings[0].message.find("11"), std::string::npos);
}

TEST(ProtocolDocSyncTest, FlagsDocRowWithNoEnumerator) {
  std::string doc(kSyncedDoc);
  doc += "| `kGhostMessage` | 42 |\n";
  const auto findings =
      CheckProtocolDocSync(kSyncedHeader, kSyncedEstimatorHeader, doc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kGhostMessage"), std::string::npos);
}

TEST(ProtocolDocSyncTest, FlagsEnumeratorWithoutExplicitValue) {
  std::string header(kSyncedHeader);
  header.replace(header.find("kPing = 10,"), sizeof("kPing = 10,") - 1,
                 "kPing,");
  const auto findings =
      CheckProtocolDocSync(header, kSyncedEstimatorHeader, kSyncedDoc);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "protocol-doc-sync");
}

TEST(ProtocolDocSyncTest, FlagsMissingEnumBlock) {
  const auto findings =
      CheckProtocolDocSync("int x;\n", kSyncedEstimatorHeader, kSyncedDoc);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("MessageType"), std::string::npos);
}

TEST(ProtocolDocSyncTest, FlagsBackendEnumeratorMissingFromDoc) {
  std::string doc(kSyncedDoc);
  doc.erase(doc.find("| `kDeepEnsemble` | 1 |\n"),
            sizeof("| `kDeepEnsemble` | 1 |\n") - 1);
  const auto findings =
      CheckProtocolDocSync(kSyncedHeader, kSyncedEstimatorHeader, doc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "protocol-doc-sync");
  EXPECT_NE(findings[0].message.find("UncertaintyBackend::kDeepEnsemble"),
            std::string::npos);
}

TEST(ProtocolDocSyncTest, FlagsBackendValueDisagreement) {
  std::string doc(kSyncedDoc);
  doc.replace(doc.find("| `kDeepEnsemble` | 1 |"),
              sizeof("| `kDeepEnsemble` | 1 |") - 1,
              "| `kDeepEnsemble` | 2 |");
  const auto findings =
      CheckProtocolDocSync(kSyncedHeader, kSyncedEstimatorHeader, doc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kDeepEnsemble"), std::string::npos);
}

TEST(ProtocolDocSyncTest, FlagsMissingBackendEnumBlock) {
  const auto findings =
      CheckProtocolDocSync(kSyncedHeader, "int x;\n", kSyncedDoc);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("UncertaintyBackend"),
            std::string::npos);
  EXPECT_EQ(findings[0].file, "src/uncertainty/estimator.h");
}

TEST(ProtocolDocSyncTest, RealRepoFilesAreInSync) {
  // Guard against the checked-in header and doc drifting apart; the repo
  // root is two levels up from the build tree's tools/lint cwd, so rely on
  // ctest running from build/ and probe both candidates.
  for (const char* root : {".", "..", "../..", "../../.."}) {
    const std::string probe = std::string(root) + "/docs/PROTOCOL.md";
    if (FILE* f = std::fopen(probe.c_str(), "rb")) {
      std::fclose(f);
      EXPECT_TRUE(CheckProtocolDocSyncFiles(root).empty());
      return;
    }
  }
  GTEST_SKIP() << "repo root not found from test cwd";
}

// --- simd-discipline --------------------------------------------------------

TEST(SimdDisciplineTest, FlagsIntrinsicHeaderOutsideSimdDir) {
  const auto findings =
      LintSource("src/nn/dense.cc", "#include <immintrin.h>\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "simd-discipline");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("immintrin"), std::string::npos);
}

TEST(SimdDisciplineTest, FlagsNeonHeaderOutsideSimdDir) {
  const auto findings =
      LintSource("tests/tensor/foo_test.cc", "#include <arm_neon.h>\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "simd-discipline");
}

TEST(SimdDisciplineTest, FlagsX86IntrinsicIdentifiers) {
  const auto findings = LintSource(
      "src/nn/dense.cc",
      "__m256 v = _mm256_loadu_ps(p);\n_mm256_storeu_ps(q, v);\n");
  ASSERT_EQ(findings.size(), 3u);  // __m256 + two _mm256_* calls.
  for (const auto& f : findings) EXPECT_EQ(f.rule, "simd-discipline");
}

TEST(SimdDisciplineTest, FlagsNeonIntrinsicIdentifiers) {
  const auto findings = LintSource(
      "src/uncertainty/mc_dropout.cc",
      "float32x4_t v = vld1q_f32(p);\nvst1q_f32(q, vfmaq_f32(v, v, v));\n");
  ASSERT_EQ(findings.size(), 4u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "simd-discipline");
}

TEST(SimdDisciplineTest, AllowsIntrinsicsInsideSimdDir) {
  const auto findings = LintSource(
      "src/tensor/simd/kernels_avx2.cc",
      "#include <immintrin.h>\n__m256 v = _mm256_setzero_ps();\n");
  EXPECT_TRUE(findings.empty());
}

TEST(SimdDisciplineTest, AllowsF32SuffixedVariablesAndMentionsInComments) {
  // weight_f32_ / a_f32 do not match the NEON v*q_f32 pattern, and banned
  // names inside comments or strings are never findings.
  const auto findings = LintSource(
      "src/nn/dense.cc",
      "int weight_f32_ = 0;  // _mm256_loadu_ps in a comment is fine\n"
      "const char* s = \"float32x4_t\";\nint a_f32 = weight_f32_;\n");
  EXPECT_TRUE(findings.empty());
}

namespace {

// Minimal kernels.h/backend pair that is in sync; tests perturb one side.
const char kSyncedKernelsHeader[] =
    "struct F32Kernels {\n"
    "  const char* name;\n"
    "  void (*matmul)(const float* a, const float* b, float* c, size_t m,\n"
    "                 size_t k, size_t n);\n"
    "  void (*relu)(const float* in, float* out, size_t n);\n"
    "};\n";

const char kSyncedBackend[] =
    "const F32Kernels& ScalarKernels() {\n"
    "  static const F32Kernels kTable = {\n"
    "      .name = \"scalar\",\n"
    "      .matmul = ScalarMatMul,\n"
    "      .relu = ScalarRelu,\n"
    "  };\n"
    "  return kTable;\n"
    "}\n";

}  // namespace

TEST(SimdKernelTableSyncTest, CleanWhenInSync) {
  EXPECT_TRUE(CheckSimdKernelTableSync(
                  kSyncedKernelsHeader,
                  {{"src/tensor/simd/kernels_scalar.cc", kSyncedBackend}})
                  .empty());
}

TEST(SimdKernelTableSyncTest, FlagsFieldMissingFromBackendTable) {
  std::string backend(kSyncedBackend);
  backend.erase(backend.find("      .relu = ScalarRelu,\n"),
                sizeof("      .relu = ScalarRelu,\n") - 1);
  const auto findings = CheckSimdKernelTableSync(
      kSyncedKernelsHeader, {{"src/tensor/simd/kernels_scalar.cc", backend}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "simd-discipline");
  EXPECT_NE(findings[0].message.find("relu"), std::string::npos);
}

TEST(SimdKernelTableSyncTest, FlagsInitializerWithNoDeclaredField) {
  std::string backend(kSyncedBackend);
  backend.replace(backend.find(".relu = ScalarRelu"),
                  sizeof(".relu = ScalarRelu") - 1, ".gelu = ScalarGelu");
  const auto findings = CheckSimdKernelTableSync(
      kSyncedKernelsHeader, {{"src/tensor/simd/kernels_scalar.cc", backend}});
  ASSERT_EQ(findings.size(), 2u);  // relu never set + gelu undeclared.
  EXPECT_NE(findings[0].message.find("relu"), std::string::npos);
  EXPECT_NE(findings[1].message.find("gelu"), std::string::npos);
}

TEST(SimdKernelTableSyncTest, FlagsBackendWithNoTable) {
  const auto findings = CheckSimdKernelTableSync(
      kSyncedKernelsHeader,
      {{"src/tensor/simd/kernels_neon.cc", "void NeonMatMul();\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("no F32Kernels table"),
            std::string::npos);
}

TEST(SimdKernelTableSyncTest, FlagsMissingStruct) {
  const auto findings = CheckSimdKernelTableSync(
      "int x;\n", {{"src/tensor/simd/kernels_scalar.cc", kSyncedBackend}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("F32Kernels"), std::string::npos);
}

TEST(SimdKernelTableSyncTest, RealRepoTablesAreInSync) {
  for (const char* root : {".", "..", "../..", "../../.."}) {
    const std::string probe =
        std::string(root) + "/src/tensor/simd/kernels.h";
    if (FILE* f = std::fopen(probe.c_str(), "rb")) {
      std::fclose(f);
      const auto findings = CheckSimdKernelTableSyncFiles(root);
      for (const auto& finding : findings) {
        ADD_FAILURE() << finding.file << ": " << finding.message;
      }
      return;
    }
  }
  GTEST_SKIP() << "repo root not found from test cwd";
}

}  // namespace
}  // namespace tasfar::lint
