// tasfar_lint — repo-specific invariant checker.
//
// Enforces the invariants clang-tidy cannot express for this codebase:
//   rng-discipline    everything stochastic draws from an explicit
//                     tasfar::Rng& (no std::rand / std::random_device /
//                     std::mt19937 / wall-clock time() seeding), repo-wide
//   thread-discipline all parallelism goes through util/thread_pool.h
//                     (no raw std::thread / std::jthread / std::async
//                     outside src/util/thread_pool.*), repo-wide
//   no-iostream       src/ logs through util/logging.h, never <iostream>
//   check-not-assert  src/ uses TASFAR_CHECK, never bare assert()
//   simd-discipline   raw vector intrinsics live only in src/tensor/simd/,
//                     and every backend's F32Kernels table registers every
//                     field declared in kernels.h, repo-wide
//   estimator-discipline  src/ constructs uncertainty estimators through
//                     MakeEstimator (concrete McDropoutPredictor /
//                     DeepEnsemble / LastLayerLaplace only inside
//                     src/uncertainty/; tests and benches exempt)
//   header-guard      headers guard with TASFAR_<PATH>_H_
//   protocol-doc-sync src/serve/protocol.h + src/uncertainty/estimator.h
//                     enums match docs/PROTOCOL.md
//
// Usage: tasfar_lint [repo_root] [root_dir ...]
// Default roots: src tests bench examples tools. Exits 1 on any finding,
// 2 on I/O errors.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"
#include "util/logging.h"
#include "util/status.h"

int main(int argc, char** argv) {
  const std::string repo_root = argc > 1 ? argv[1] : ".";
  std::vector<std::string> roots;
  for (int i = 2; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) {
    roots = {"src", "tests", "bench", "examples", "tools"};
  }

  tasfar::Result<std::vector<tasfar::lint::Finding>> result =
      tasfar::lint::LintTree(repo_root, roots);
  if (!result.ok()) {
    TASFAR_LOG(kError) << "tasfar_lint: " << result.status().ToString();
    return 2;
  }

  std::vector<tasfar::lint::Finding> findings = result.value();
  // Repo-level checks that pair a source file with its normative doc.
  const std::vector<tasfar::lint::Finding> doc_sync =
      tasfar::lint::CheckProtocolDocSyncFiles(repo_root);
  findings.insert(findings.end(), doc_sync.begin(), doc_sync.end());
  const std::vector<tasfar::lint::Finding> table_sync =
      tasfar::lint::CheckSimdKernelTableSyncFiles(repo_root);
  findings.insert(findings.end(), table_sync.begin(), table_sync.end());
  for (const tasfar::lint::Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    TASFAR_LOG(kError) << "tasfar_lint: " << findings.size()
                       << " invariant violation(s)";
    return 1;
  }
  TASFAR_LOG(kInfo) << "tasfar_lint: clean";
  return 0;
}
