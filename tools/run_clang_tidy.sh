#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the project's
# first-party sources using the compile database of an existing build dir.
#
# Usage: tools/run_clang_tidy.sh [build_dir] [-- extra clang-tidy args]
#   build_dir defaults to "build". If it has no compile_commands.json, one is
#   generated with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
#
# Exits nonzero on any finding (WarningsAsErrors is '*' in .clang-tidy).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: '$tidy_bin' not found on PATH." >&2
  echo "Install clang-tidy or set CLANG_TIDY=/path/to/clang-tidy." >&2
  exit 2
fi

cd "$repo_root"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: generating $build_dir/compile_commands.json"
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party translation units only; system/third-party headers are already
# excluded by HeaderFilterRegex in .clang-tidy.
mapfile -t sources < <(git ls-files \
  'src/**/*.cc' 'tools/**/*.cc' 'tests/**/*.cc' 'bench/**/*.cc' \
  'examples/**/*.cpp')

if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_clang_tidy.sh: no sources found" >&2
  exit 2
fi

echo "run_clang_tidy.sh: checking ${#sources[@]} files"
status=0
for src in "${sources[@]}"; do
  if ! "$tidy_bin" -p "$build_dir" --quiet "$@" "$src"; then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  echo "run_clang_tidy.sh: findings detected" >&2
fi
exit $status
