#!/usr/bin/env sh
# Assembles BENCH_PR9.json, the record of the float32 SIMD kernel backend
# (docs/MEMORY.md §"Float32 compute mode"): real_time (ns) for the double
# and f32 variants of the MatMul thread sweep and the MC-dropout Predict
# sweep, plus the kernel-dispatch overhead micros. Both variants come from
# the SAME run of each binary, so the recorded speedups are same-machine,
# same-build ratios, not cross-run noise.
#
# Usage:
#   tools/make_bench_pr9.sh CORE_JSON NN_JSON OBS_JSON OUT
#
# where the three inputs are fresh --benchmark_format=json runs of
# bench_micro_core, bench_micro_nn, and bench_micro_obs. Fails if any
# benchmark in any input reported an error — benchmark errors must fail
# the build, not silently produce a partial record.
set -eu

if [ "$#" -ne 4 ]; then
  echo "usage: $0 CORE_JSON NN_JSON OBS_JSON OUT" >&2
  exit 2
fi

for f in "$1" "$2" "$3"; do
  if jq -e '[.benchmarks[] | select(.error_occurred == true)] | length > 0' \
      "$f" > /dev/null; then
    echo "benchmark errors in $f:" >&2
    jq -r '.benchmarks[] | select(.error_occurred == true) |
           "  \(.name): \(.error_message)"' "$f" >&2
    exit 1
  fi
done

jq -n \
  --slurpfile core "$1" --slurpfile nn "$2" --slurpfile obs "$3" '
  def rows($doc; $prefix): [$doc.benchmarks[] |
    select(.name | startswith($prefix)) | {name, real_time, time_unit}];
  def ns($doc; $n): [$doc.benchmarks[] | select(.name == $n) | .real_time][0];
  def speedup($doc; $double; $f32): (ns($doc; $double) / ns($doc; $f32));
  {
    matmul: {
      double: rows($nn[0]; "BM_MatMulThreads/"),
      f32: rows($nn[0]; "BM_MatMulF32Threads/"),
      speedup_128_1thread:
        speedup($nn[0]; "BM_MatMulThreads/128/1/real_time";
                        "BM_MatMulF32Threads/128/1/real_time"),
      speedup_256_1thread:
        speedup($nn[0]; "BM_MatMulThreads/256/1/real_time";
                        "BM_MatMulF32Threads/256/1/real_time")
    },
    mc_dropout: {
      double: rows($core[0]; "BM_McDropoutPredictThreads/"),
      f32: rows($core[0]; "BM_McDropoutPredictF32Threads/"),
      speedup_20_1thread:
        speedup($core[0]; "BM_McDropoutPredictThreads/20/1/real_time";
                          "BM_McDropoutPredictF32Threads/20/1/real_time")
    },
    dispatch_overhead: {
      rows: rows($obs[0]; "BM_SimdKernel"),
      lookup_ns: (ns($obs[0]; "BM_SimdKernelDispatch")
                  - ns($obs[0]; "BM_SimdKernelDirect"))
    },
    headline: {
      matmul_f32_vs_double:
        speedup($nn[0]; "BM_MatMulThreads/256/1/real_time";
                        "BM_MatMulF32Threads/256/1/real_time"),
      mc_dropout_f32_vs_double:
        speedup($core[0]; "BM_McDropoutPredictThreads/20/1/real_time";
                          "BM_McDropoutPredictF32Threads/20/1/real_time"),
      targets: {matmul_f32_vs_double: 4.0, mc_dropout_f32_vs_double: 2.5},
      note: "PR 5 recorded BM_McDropoutPredictThreads/20/1 as its headline; the f32 ratio here is measured against that same double-path row from the same run."
    }
  }' > "$4"

echo "wrote $4 (matmul x$(jq -r '.headline.matmul_f32_vs_double' "$4"), mc-dropout x$(jq -r '.headline.mc_dropout_f32_vs_double' "$4"))"

# The acceptance targets are part of the record: fail if the measured
# ratios regressed below them.
jq -e '.headline.matmul_f32_vs_double >= .headline.targets.matmul_f32_vs_double
       and .headline.mc_dropout_f32_vs_double
           >= .headline.targets.mc_dropout_f32_vs_double' "$4" > /dev/null || {
  echo "f32 speedups below acceptance targets" >&2
  exit 1
}
