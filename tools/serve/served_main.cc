// tasfar_served: the long-lived TASFAR adaptation daemon (docs/SERVING.md).
//
// Serves the wire protocol of docs/PROTOCOL.md on a loopback TCP port and
// Prometheus metrics to any plain "GET " request on the same port.
//
//   tasfar_served --demo                      # built-in housing demo model
//   tasfar_served --weights w.txt --calib c.txt --input-dim 8
//
// Environment:
//   TASFAR_SERVE_PORT           listen port (0 = ephemeral; --port wins)
//   TASFAR_SERVE_MAX_SESSIONS   session cap (default 64)
//   TASFAR_SERVE_SESSION_BUDGET_MB  default per-session budget (default 64)
//   TASFAR_SERVE_WRITE_TIMEOUT_MS   per-send stall bound (default 5000)

#include <poll.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/calibration_io.h"
#include "data/housing_sim.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/demo.h"
#include "serve/server.h"
#include "util/rng.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

size_t EnvSizeOr(const char* var, size_t fallback) {
  const char* v = std::getenv(var);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<size_t>(parsed);
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: tasfar_served (--demo | --weights W --calib C --input-dim D)\n"
      "                     [--port P] [--port-file PATH] [--oneshot]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tasfar;        // NOLINT
  using namespace tasfar::serve; // NOLINT

  bool demo = false;
  bool oneshot = false;
  std::string weights_path, calib_path, port_file;
  size_t input_dim = 0;
  long port_flag = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tasfar_served: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--oneshot") {
      oneshot = true;  // Exit after binding; CI smoke uses the real loop.
    } else if (arg == "--weights") {
      weights_path = next("--weights");
    } else if (arg == "--calib") {
      calib_path = next("--calib");
    } else if (arg == "--input-dim") {
      input_dim = static_cast<size_t>(std::strtoul(next("--input-dim"),
                                                   nullptr, 10));
    } else if (arg == "--port") {
      port_flag = std::strtol(next("--port"), nullptr, 10);
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else {
      Usage();
      return 2;
    }
  }
  if (!demo && (weights_path.empty() || calib_path.empty() ||
                input_dim == 0)) {
    Usage();
    return 2;
  }

  obs::SetMetricsEnabled(true);

  // --- Source artifacts -------------------------------------------------
  std::unique_ptr<Sequential> model;
  SourceCalibration calibration;
  // Demo mode serves all three uncertainty backends, each against the
  // calibration fit on its own scale; file mode ships one calibration
  // file, so only options.uncertainty_backend is served (docs/SERVING.md).
  SourceCalibration ensemble_calibration;
  SourceCalibration laplace_calibration;
  TasfarOptions options;
  if (demo) {
    std::printf("tasfar_served: training the demo housing model...\n");
    std::fflush(stdout);
    // The serve test tier's bundle scale. Beyond demo-scale training the
    // source model's last-layer features fit the source manifold so
    // tightly that every covariate-shifted target row carries more
    // Laplace uncertainty than any source row — the confident set is
    // empty and the laplace backend (correctly) falls back to source
    // serving (docs/UNCERTAINTY.md §Backend caveats). At this scale all
    // three registered backends adapt.
    DemoBundle bundle = BuildDemoBundle(/*source_samples=*/800,
                                        /*target_samples=*/200, /*epochs=*/6);
    model = std::move(bundle.model);
    calibration = bundle.calibration;
    ensemble_calibration = bundle.ensemble_calibration;
    laplace_calibration = bundle.laplace_calibration;
    options = bundle.options;
    input_dim = kNumHousingFeatures;
  } else {
    // The tabular MLP architecture is the one deployable from files today;
    // other architectures embed the server API directly (docs/SERVING.md).
    Rng rng(1);
    model = BuildTabularModel(input_dim, &rng);
    Status st = LoadParams(model.get(), weights_path);
    if (!st.ok()) {
      std::fprintf(stderr, "tasfar_served: %s\n", st.ToString().c_str());
      return 1;
    }
    Result<SourceCalibration> calib = LoadCalibration(calib_path);
    if (!calib.ok()) {
      std::fprintf(stderr, "tasfar_served: %s\n",
                   calib.status().ToString().c_str());
      return 1;
    }
    calibration = calib.value();
  }

  // --- Server -----------------------------------------------------------
  ServerConfig config;
  config.port = static_cast<uint16_t>(
      port_flag >= 0 ? port_flag : EnvSizeOr("TASFAR_SERVE_PORT", 0));
  config.manager.max_sessions = EnvSizeOr("TASFAR_SERVE_MAX_SESSIONS", 64);
  config.manager.default_budget_bytes =
      EnvSizeOr("TASFAR_SERVE_SESSION_BUDGET_MB", 64) * 1024 * 1024;
  config.write_timeout_ms = static_cast<uint32_t>(
      EnvSizeOr("TASFAR_SERVE_WRITE_TIMEOUT_MS", 5000));

  Server server(model.get(), &calibration, options, config);
  if (demo) {
    server.RegisterBackendCalibration(UncertaintyBackend::kDeepEnsemble,
                                      &ensemble_calibration);
    server.RegisterBackendCalibration(UncertaintyBackend::kLastLayerLaplace,
                                      &laplace_calibration);
  }
  const Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "tasfar_served: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("tasfar_served: listening on 127.0.0.1:%u (input_dim %zu, "
              "max_sessions %zu, budget %zu MiB)\n",
              server.port(), input_dim, config.manager.max_sessions,
              config.manager.default_budget_bytes / (1024 * 1024));
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }
  }
  if (oneshot) {
    server.Stop();
    return 0;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    ::poll(nullptr, 0, 200);  // Sleep without std::chrono.
  }
  std::printf("tasfar_served: shutting down\n");
  server.Stop();
  return 0;
}
