// tasfar_serve_cli: command-line client for tasfar_served
// (docs/SERVING.md §Quickstart, docs/PROTOCOL.md for the wire format).
//
//   tasfar_serve_cli --port P <command> [args]
//
// Commands:
//   ping
//   create <user> [seed] [budget_mb] [backend]
//       input_dim fixed to the demo's 8; backend is mc_dropout (default),
//       ensemble, or laplace (docs/UNCERTAINTY.md)
//   submit <user> <demo_rows>            deterministic demo target rows
//   adapt <user> [adapt_seed]
//   wait <user> [timeout_ms]             poll until adapted or degraded
//   query <user>
//   predict <user> <demo_rows>
//   save <user> <file>
//   restore <user> <file>
//   close <user>
//   inspect <user> [dump_file]           session telemetry + flight dump
//   metrics

#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "data/housing_sim.h"
#include "serve/client.h"
#include "serve/demo.h"

namespace {

using tasfar::Status;
using tasfar::Tensor;
using tasfar::serve::Client;
using tasfar::serve::ClientSessionInfo;
using tasfar::serve::SessionState;
using tasfar::serve::SessionStateName;

int Die(const Status& st) {
  std::fprintf(stderr, "tasfar_serve_cli: %s\n", st.ToString().c_str());
  return 1;
}

void PrintInfo(const ClientSessionInfo& info) {
  std::printf("state=%s backend=%s pending_rows=%llu adapt_runs=%llu "
              "serving_adapted=%d used_bytes=%llu budget_bytes=%llu\n",
              SessionStateName(info.state), info.backend.c_str(),
              static_cast<unsigned long long>(info.pending_rows),
              static_cast<unsigned long long>(info.adapt_runs),
              info.serving_adapted ? 1 : 0,
              static_cast<unsigned long long>(info.used_bytes),
              static_cast<unsigned long long>(info.budget_bytes));
  if (!info.degraded_reason.empty()) {
    std::printf("degraded_reason=%s\n", info.degraded_reason.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  long port = 0;
  int argi = 1;
  if (argi + 1 < argc && std::strcmp(argv[argi], "--port") == 0) {
    port = std::strtol(argv[argi + 1], nullptr, 10);
    argi += 2;
  }
  if (port <= 0 || argi >= argc) {
    std::fprintf(stderr,
                 "usage: tasfar_serve_cli --port P <command> [args]\n");
    return 2;
  }
  const std::string cmd = argv[argi++];
  auto arg = [&](int k) -> std::string {
    return argi + k < argc ? argv[argi + k] : "";
  };

  Client client;
  Status st = client.Connect(static_cast<uint16_t>(port));
  if (!st.ok()) return Die(st);

  if (cmd == "ping") {
    st = client.Ping();
    if (!st.ok()) return Die(st);
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "metrics") {
    auto text = client.GetMetrics();
    if (!text.ok()) return Die(text.status());
    std::fputs(text.value().c_str(), stdout);
    return 0;
  }

  const std::string user = arg(0);
  if (user.empty()) {
    std::fprintf(stderr, "tasfar_serve_cli: %s needs a user id\n",
                 cmd.c_str());
    return 2;
  }

  if (cmd == "create") {
    const uint64_t seed =
        arg(1).empty() ? 0x5eedULL : std::strtoull(arg(1).c_str(),
                                                   nullptr, 10);
    const uint64_t budget_mb =
        arg(2).empty() ? 0 : std::strtoull(arg(2).c_str(), nullptr, 10);
    tasfar::UncertaintyBackend backend =
        tasfar::UncertaintyBackend::kMcDropout;
    if (!arg(3).empty() &&
        !tasfar::ParseUncertaintyBackendName(arg(3), &backend)) {
      std::fprintf(stderr,
                   "tasfar_serve_cli: unknown backend '%s' (want "
                   "mc_dropout, ensemble, or laplace)\n",
                   arg(3).c_str());
      return 2;
    }
    st = client.CreateSession(user, seed, tasfar::kNumHousingFeatures,
                              budget_mb * 1024 * 1024, backend);
    if (!st.ok()) return Die(st);
    std::printf("created session '%s' (backend %s)\n", user.c_str(),
                tasfar::UncertaintyBackendName(backend));
    return 0;
  }
  if (cmd == "submit" || cmd == "predict") {
    const size_t n =
        arg(1).empty() ? 64 : std::strtoul(arg(1).c_str(), nullptr, 10);
    const Tensor rows = tasfar::serve::BuildDemoTargetRows(n);
    if (cmd == "submit") {
      st = client.SubmitTargetData(user, static_cast<uint32_t>(rows.dim(0)),
                                   static_cast<uint32_t>(rows.dim(1)),
                                   rows.data());
      if (!st.ok()) return Die(st);
      std::printf("submitted %zu rows\n", rows.dim(0));
      return 0;
    }
    auto pred = client.Predict(user, static_cast<uint32_t>(rows.dim(0)),
                               static_cast<uint32_t>(rows.dim(1)),
                               rows.data());
    if (!pred.ok()) return Die(pred.status());
    std::printf("from_adapted=%d\n", pred.value().from_adapted ? 1 : 0);
    for (size_t i = 0; i < pred.value().predictions.size(); ++i) {
      const auto& p = pred.value().predictions[i];
      std::printf("row %zu:", i);
      for (size_t d = 0; d < p.mean.size(); ++d) {
        std::printf(" mean=%.17g std=%.17g", p.mean[d], p.std[d]);
      }
      std::printf("\n");
    }
    return 0;
  }
  if (cmd == "adapt") {
    const uint64_t seed =
        arg(1).empty() ? 7 : std::strtoull(arg(1).c_str(), nullptr, 10);
    st = client.Adapt(user, seed);
    if (!st.ok()) return Die(st);
    std::printf("adapt job queued\n");
    return 0;
  }
  if (cmd == "wait") {
    const long timeout_ms =
        arg(1).empty() ? 120000 : std::strtol(arg(1).c_str(), nullptr, 10);
    long waited = 0;
    for (;;) {
      auto info = client.QuerySession(user);
      if (!info.ok()) return Die(info.status());
      const SessionState s = info.value().state;
      if (s == SessionState::kAdapted || s == SessionState::kDegraded) {
        PrintInfo(info.value());
        return 0;
      }
      if (waited >= timeout_ms) {
        std::fprintf(stderr, "tasfar_serve_cli: wait timed out in state "
                             "%s\n", SessionStateName(s));
        return 1;
      }
      ::poll(nullptr, 0, 100);
      waited += 100;
    }
  }
  if (cmd == "query") {
    auto info = client.QuerySession(user);
    if (!info.ok()) return Die(info.status());
    PrintInfo(info.value());
    return 0;
  }
  if (cmd == "save") {
    auto blob = client.SaveSession(user);
    if (!blob.ok()) return Die(blob.status());
    const std::string path = arg(1);
    if (path.empty()) return Die(Status::InvalidArgument("save needs a file"));
    std::ofstream out(path, std::ios::trunc);
    out << blob.value();
    if (!out.good()) return Die(Status::IoError("writing " + path));
    std::printf("saved session '%s' to %s (%zu bytes)\n", user.c_str(),
                path.c_str(), blob.value().size());
    return 0;
  }
  if (cmd == "restore") {
    const std::string path = arg(1);
    std::ifstream in(path);
    if (!in.is_open()) return Die(Status::NotFound("cannot open " + path));
    std::ostringstream buf;
    buf << in.rdbuf();
    st = client.RestoreSession(user, buf.str());
    if (!st.ok()) return Die(st);
    std::printf("restored session '%s' from %s\n", user.c_str(),
                path.c_str());
    return 0;
  }
  if (cmd == "close") {
    st = client.CloseSession(user);
    if (!st.ok()) return Die(st);
    std::printf("closed session '%s'\n", user.c_str());
    return 0;
  }
  if (cmd == "inspect") {
    auto telemetry = client.InspectSession(user);
    if (!telemetry.ok()) return Die(telemetry.status());
    const auto& t = telemetry.value();
    std::printf("state=%s predict_count=%llu predict_p50_ms=%.3f "
                "predict_p99_ms=%.3f\n",
                SessionStateName(t.state),
                static_cast<unsigned long long>(t.predict_count),
                t.predict_p50_ms, t.predict_p99_ms);
    for (const auto& s : t.adapt_samples) {
      std::printf("adapt run=%llu outcome=%s uncertain_ratio=%.17g "
                  "mean_credibility=%.17g density_total_mass=%.17g "
                  "density_mean_sigma=%.17g final_loss=%.17g epochs=%llu\n",
                  static_cast<unsigned long long>(s.adapt_run),
                  tasfar::serve::AdaptOutcomeName(
                      static_cast<tasfar::serve::AdaptOutcome>(s.outcome)),
                  s.uncertain_ratio, s.mean_credibility,
                  s.density_total_mass, s.density_mean_sigma, s.final_loss,
                  static_cast<unsigned long long>(s.epochs));
    }
    for (const auto& ev : t.flight_events) {
      std::printf("flight [%llu.%06llu] serve.flight.%s trace=%llu %s\n",
                  static_cast<unsigned long long>(ev.t_us / 1000000),
                  static_cast<unsigned long long>(ev.t_us % 1000000),
                  ev.code_name.c_str(),
                  static_cast<unsigned long long>(ev.trace_id),
                  ev.detail.c_str());
    }
    const std::string path = arg(1);
    if (!path.empty()) {
      std::ofstream out(path, std::ios::trunc);
      out << t.last_dump;
      if (!out.good()) return Die(Status::IoError("writing " + path));
      std::printf("wrote flight-recorder dump (%zu bytes) to %s\n",
                  t.last_dump.size(), path.c_str());
    } else if (!t.last_dump.empty()) {
      std::fputs(t.last_dump.c_str(), stdout);
    }
    return 0;
  }
  std::fprintf(stderr, "tasfar_serve_cli: unknown command '%s'\n",
               cmd.c_str());
  return 2;
}
