// tasfar_analyze — whole-program invariant analyzer.
//
// Lexes every src/**/*.{h,cc} file (in parallel, through a content-hash
// incremental cache), extracts symbols, and enforces the five
// whole-program rules from docs/STATIC_ANALYSIS.md:
//   parallel-capture      no shared writes from ParallelFor lambdas
//   into-aliasing         *Into destinations never silently alias inputs
//   workspace-escape      workspace tensors stay out of members/statics
//   seed-discipline       child seeds derive via MixSeed, not arithmetic
//   registry-consistency  metric/span/failpoint names match the docs
//
// Usage: tasfar_analyze [repo_root]
//          [--cache-dir=DIR | --no-cache] [--sarif=PATH | --no-sarif]
// Defaults: cache under <root>/bench_out/analyze_cache/v<schema>/, SARIF
// to <root>/bench_out/analyze.sarif. Exits 0 when clean, 1 on any
// unsuppressed finding, 2 on I/O errors.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "engine.h"
#include "sarif.h"
#include "util/logging.h"

namespace {

bool ConsumeFlag(const std::string& arg, const std::string& prefix,
                 std::string* value) {
  if (arg.compare(0, prefix.size(), prefix) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string repo_root = ".";
  std::string cache_dir;
  std::string sarif_path;
  bool no_cache = false;
  bool no_sarif = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--no-sarif") {
      no_sarif = true;
    } else if (ConsumeFlag(arg, "--cache-dir=", &value)) {
      cache_dir = value;
    } else if (ConsumeFlag(arg, "--sarif=", &value)) {
      sarif_path = value;
    } else if (!arg.empty() && arg[0] == '-') {
      TASFAR_LOG(kError) << "tasfar_analyze: unknown flag " << arg;
      return 2;
    } else {
      repo_root = arg;
    }
  }
  if (!no_cache && cache_dir.empty()) {
    cache_dir = (fs::path(repo_root) / "bench_out" / "analyze_cache" /
                 ("v" + std::to_string(tasfar::analyze::kFactsSchemaVersion)))
                    .string();
  }
  if (no_cache) cache_dir.clear();
  if (!no_sarif && sarif_path.empty()) {
    sarif_path =
        (fs::path(repo_root) / "bench_out" / "analyze.sarif").string();
  }

  tasfar::analyze::AnalyzeOptions options;
  options.repo_root = repo_root;
  options.cache_dir = cache_dir;
  const tasfar::analyze::AnalyzeResult result =
      tasfar::analyze::AnalyzeRepo(options);
  if (result.io_error) {
    TASFAR_LOG(kError) << "tasfar_analyze: " << result.error;
    return 2;
  }

  for (const tasfar::analyze::Finding& f : result.findings) {
    if (f.suppressed) continue;
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }

  if (!no_sarif && !sarif_path.empty()) {
    std::error_code ec;
    fs::create_directories(fs::path(sarif_path).parent_path(), ec);
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      TASFAR_LOG(kError) << "tasfar_analyze: cannot write " << sarif_path;
      return 2;
    }
    out << tasfar::analyze::ToSarif(result.findings);
  }

  TASFAR_LOG(kInfo) << "tasfar_analyze: " << result.files_scanned
                    << " files (" << result.cache_hits << " cached), "
                    << result.unsuppressed << " finding(s), "
                    << result.suppressed << " suppressed";
  return result.unsuppressed > 0 ? 1 : 0;
}
