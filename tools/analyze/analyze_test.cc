#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine.h"
#include "facts.h"
#include "lexer.h"
#include "rules.h"
#include "sarif.h"

namespace tasfar::analyze {
namespace {

namespace fs = std::filesystem;

int CountRule(const FileFacts& facts, const std::string& rule) {
  int n = 0;
  for (const Finding& f : facts.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// --- lexer ------------------------------------------------------------------

TEST(LexerTest, KindsAndLines) {
  const auto toks = Lex("int x = 42;\nfoo(\"s\", 'c');  // note\n");
  ASSERT_GE(toks.size(), 11u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[3].text, "42");
  const auto code = CodeTokens(toks);
  for (const Token& t : code) EXPECT_NE(t.kind, TokKind::kComment);
  bool saw_string = false;
  bool saw_char = false;
  for (const Token& t : code) {
    if (t.kind == TokKind::kString) {
      saw_string = true;
      EXPECT_EQ(t.text, "s");
      EXPECT_EQ(t.line, 2);
    }
    if (t.kind == TokKind::kChar) {
      saw_char = true;
      EXPECT_EQ(t.text, "c");
    }
  }
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_char);
}

TEST(LexerTest, MultiCharPunctuatorsAreGreedy) {
  const auto toks = Lex("a <<= b; p->q; x::y; i++;");
  std::vector<std::string> puncts;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<<="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "++"), puncts.end());
}

TEST(LexerTest, RawStringContentsAndLineCounting) {
  const auto toks = Lex("auto s = R\"x(line1\nline2)x\";\nint after;");
  bool saw_raw = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kString) {
      saw_raw = true;
      EXPECT_EQ(t.text, "line1\nline2");
    }
    if (t.kind == TokKind::kIdent && t.text == "after") {
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_TRUE(saw_raw);
}

TEST(LexerTest, MatchingCloseHonorsNesting) {
  const auto toks = Lex("f(a, g(b, h[c]), {d})");
  ASSERT_TRUE(IsPunct(toks[1], "("));
  const size_t close = MatchingClose(toks, 1);
  EXPECT_EQ(close, toks.size() - 1);
}

TEST(LexerTest, ContentHashIsStableAndDiscriminates) {
  EXPECT_EQ(HashContent("abc"), HashContent("abc"));
  EXPECT_NE(HashContent("abc"), HashContent("abd"));
  EXPECT_NE(HashContent(""), HashContent(" "));
}

// --- parallel-capture -------------------------------------------------------

struct RuleCase {
  const char* name;
  const char* source;
  int expected;
};

class ParallelCaptureTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(ParallelCaptureTest, Detects) {
  const RuleCase& c = GetParam();
  const FileFacts facts = AnalyzeSource("src/core/fixture.cc", c.source);
  EXPECT_EQ(CountRule(facts, "parallel-capture"), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParallelCaptureTest,
    ::testing::Values(
        RuleCase{"compound_assign_to_shared",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1, [&](size_t i) { total += x[i]; });\n"
                 "}\n",
                 1},
        RuleCase{"plain_assign_to_explicit_ref_capture",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1, [&acc](size_t i) { acc = G(i); });\n"
                 "}\n",
                 1},
        RuleCase{"subscript_without_loop_index",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1, [&](size_t i) { out[0] = G(i); });\n"
                 "}\n",
                 1},
        RuleCase{"increment_of_shared",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1, [&](size_t i) { hits++; use(i); });\n"
                 "}\n",
                 1},
        RuleCase{"disjoint_subscript_write_is_fine",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1, [&](size_t i) { out[i] = G(i); });\n"
                 "}\n",
                 0},
        RuleCase{"body_local_accumulator_is_fine",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1, [&](size_t i) {\n"
                 "    double acc = 0.0;\n"
                 "    acc += 1.0;\n"
                 "    out[i] = acc;\n"
                 "  });\n"
                 "}\n",
                 0},
        RuleCase{"member_call_on_shared_is_out_of_scope",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1,\n"
                 "              [&](size_t i) { counter.fetch_add(i); });\n"
                 "}\n",
                 0},
        RuleCase{"value_capture_is_fine",
                 "void F() {\n"
                 "  ParallelFor(0, n, 1, [&out, n](size_t i) {\n"
                 "    out[i] = n;\n"
                 "  });\n"
                 "}\n",
                 0}));

// --- into-aliasing ----------------------------------------------------------

class IntoAliasingTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(IntoAliasingTest, Detects) {
  const RuleCase& c = GetParam();
  const FileFacts facts = AnalyzeSource("src/nn/fixture.cc", c.source);
  EXPECT_EQ(CountRule(facts, "into-aliasing"), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IntoAliasingTest,
    ::testing::Values(
        RuleCase{"dest_aliases_first_input",
                 "void F() { AddInto(sum, t, &sum); }\n", 1},
        RuleCase{"dest_aliases_via_deref",
                 "void F(Tensor* a) { MulInto(*a, b, a); }\n", 1},
        RuleCase{"dest_aliases_subscripted_input",
                 "void F() { ScaleRowsInto(rows[k], s, &rows[k]); }\n", 1},
        RuleCase{"distinct_dest_is_fine",
                 "void F() { AddInto(a, b, &out); }\n", 0},
        RuleCase{"same_line_ack_is_fine",
                 "void F() {\n"
                 "  AddInto(sum, t, &sum);  // aliased: elementwise in-place\n"
                 "}\n",
                 0},
        RuleCase{"line_above_ack_is_fine",
                 "void F() {\n"
                 "  // aliased: elementwise in-place accumulate\n"
                 "  AddInto(sum, t, &sum);\n"
                 "}\n",
                 0},
        RuleCase{"declaration_is_not_a_call_site",
                 "void AddInto(const Tensor& a, const Tensor& b,\n"
                 "             Tensor* out);\n",
                 0}));

// --- workspace-escape -------------------------------------------------------

struct PathRuleCase {
  const char* name;
  const char* path;
  const char* source;
  int expected;
};

class WorkspaceEscapeTest : public ::testing::TestWithParam<PathRuleCase> {};

TEST_P(WorkspaceEscapeTest, Detects) {
  const PathRuleCase& c = GetParam();
  const FileFacts facts = AnalyzeSource(c.path, c.source);
  EXPECT_EQ(CountRule(facts, "workspace-escape"), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WorkspaceEscapeTest,
    ::testing::Values(
        PathRuleCase{"member_store_direct", "src/nn/fixture.cc",
                     "void C::F(Workspace& ws) {\n"
                     "  cached_ = ws.NewTensor({2, 2});\n"
                     "}\n",
                     1},
        PathRuleCase{"direct_return_of_uninitialized", "src/nn/fixture.cc",
                     "Tensor F() {\n"
                     "  return Workspace::ThreadLocal().NewTensor({2});\n"
                     "}\n",
                     1},
        PathRuleCase{"member_store_via_local", "src/nn/fixture.cc",
                     "void C::F(Workspace& ws) {\n"
                     "  Tensor t = ws.NewTensor({2});\n"
                     "  Fill(&t);\n"
                     "  cached_ = t;\n"
                     "}\n",
                     1},
        PathRuleCase{"static_store", "src/nn/fixture.cc",
                     "void F(Workspace& ws) {\n"
                     "  static Tensor scratch = ws.ZeroTensor({2});\n"
                     "}\n",
                     1},
        PathRuleCase{"named_handoff_is_fine", "src/nn/fixture.cc",
                     "Tensor F(Workspace& ws) {\n"
                     "  Tensor out = ws.NewTensor({2});\n"
                     "  Fill(&out);\n"
                     "  return out;\n"
                     "}\n",
                     0},
        PathRuleCase{"workspace_impl_is_exempt", "src/tensor/workspace.cc",
                     "Tensor Workspace::ZeroTensor(const Shape& s) {\n"
                     "  return NewTensor(s);\n"
                     "}\n",
                     0}));

// --- seed-discipline --------------------------------------------------------

class SeedDisciplineTest : public ::testing::TestWithParam<PathRuleCase> {};

TEST_P(SeedDisciplineTest, Detects) {
  const PathRuleCase& c = GetParam();
  const FileFacts facts = AnalyzeSource(c.path, c.source);
  EXPECT_EQ(CountRule(facts, "seed-discipline"), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SeedDisciplineTest,
    ::testing::Values(
        PathRuleCase{"xor_in_rng_declaration", "src/eval/fixture.cc",
                     "void F() { Rng rng(config.seed ^ 0x51u); }\n", 1},
        PathRuleCase{"plus_in_rng_temporary", "src/eval/fixture.cc",
                     "void F() { auto r = Rng(seed + 1); }\n", 1},
        PathRuleCase{"shift_in_fork", "src/eval/fixture.cc",
                     "void F() { auto r = rng.Fork(base_seed << 2); }\n", 1},
        PathRuleCase{"arithmetic_inside_mixseed", "src/eval/fixture.cc",
                     "void F() { auto s = MixSeed(seed * 31, stream); }\n", 1},
        PathRuleCase{"mixseed_derivation_is_fine", "src/eval/fixture.cc",
                     "void F() { Rng rng(MixSeed(config.seed, 7)); }\n", 0},
        PathRuleCase{"fork_without_seed_ident_is_fine", "src/eval/fixture.cc",
                     "void F() { auto r = rng.Fork(k + 1); }\n", 0},
        PathRuleCase{"rng_impl_is_exempt", "src/util/rng.cc",
                     "Rng MakeChild(uint64_t seed) { return Rng(seed ^ 1); }\n",
                     0}));

// --- registry-consistency ---------------------------------------------------

std::vector<Finding> RegistryFindings(const std::string& src,
                                      const std::string& obs_doc,
                                      const std::string& testing_doc) {
  std::vector<FileFacts> facts;
  facts.push_back(AnalyzeSource("src/core/fixture.cc", src));
  DocNames docs;
  ScanDocNames("docs/OBSERVABILITY.md", obs_doc, &docs);
  ScanDocNames("docs/TESTING.md", testing_doc, &docs);
  return CheckRegistryConsistency(facts, docs);
}

TEST(RegistryConsistencyTest, UndocumentedMetricIsFlagged) {
  const auto findings = RegistryFindings(
      "void F() { obs::Registry::Get().GetCounter(\"tasfar.foo.count\"); }\n",
      "no mention here\n", "");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "registry-consistency");
  EXPECT_EQ(findings[0].file, "src/core/fixture.cc");
  EXPECT_NE(findings[0].message.find("tasfar.foo.count"), std::string::npos);
}

TEST(RegistryConsistencyTest, OrphanedDocNameIsFlagged) {
  const auto findings =
      RegistryFindings("void F() {}\n", "see `tasfar.ghost.metric`\n", "");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "docs/OBSERVABILITY.md");
  EXPECT_NE(findings[0].message.find("tasfar.ghost.metric"),
            std::string::npos);
}

TEST(RegistryConsistencyTest, SpanRequiresDocumentedHistogramName) {
  const std::string src = "void F() { TASFAR_TRACE_SPAN(\"stage\"); }\n";
  EXPECT_EQ(RegistryFindings(src, "nothing\n", "").size(), 1u);
  EXPECT_TRUE(
      RegistryFindings(src, "the `tasfar.span.stage.ms` histogram\n", "")
          .empty());
}

TEST(RegistryConsistencyTest, FailpointMustBeInInjectionTable) {
  const std::string src = "void F() { TASFAR_FAILPOINT(\"stage.poison\"); }\n";
  const std::string table =
      "### Injection sites\n"
      "| site | effect |\n"
      "| `stage.poison` | poisons the stage |\n";
  EXPECT_EQ(RegistryFindings(src, "", "").size(), 1u);
  EXPECT_TRUE(RegistryFindings(src, "", table).empty());
  // Orphaned table rows are flagged in the other direction.
  const auto orphans = RegistryFindings("void F() {}\n", "", table);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0].file, "docs/TESTING.md");
}

TEST(RegistryConsistencyTest, DynamicPrefixCoversDocumentedNames) {
  const auto findings = RegistryFindings(
      "void F(const std::string& n) {\n"
      "  obs::Registry::Get().GetCounter(\"tasfar.dyn.\" + n);\n"
      "}\n",
      "counters like `tasfar.dyn.anything` appear per site\n", "");
  EXPECT_TRUE(findings.empty());
}

TEST(RegistryConsistencyTest, DottedFailpointSiteNameIsNotADocOrphan) {
  // Failpoint site names can be tasfar.-prefixed and dotted; backticking
  // one in prose (outside the injection table) must not read as an
  // undocumented-metric orphan.
  const std::string src = "void F() { TASFAR_FAILPOINT(\"tasfar.sf\"); }\n";
  const std::string table =
      "### Injection sites\n"
      "| site | effect |\n"
      "| `tasfar.sf` | stage fault |\n";
  const auto findings =
      RegistryFindings(src, "fires the `tasfar.sf` failpoint\n", table);
  EXPECT_TRUE(findings.empty());
}

TEST(RegistryConsistencyTest, SpanPrefixDoesNotCoverDocOrphans) {
  // tasfar.span.*.ms names are statically known: a documented span metric
  // with no matching TASFAR_TRACE_SPAN is an orphan even though the span
  // histogram registration is dynamic.
  const auto findings = RegistryFindings(
      "void F() {}\n", "the `tasfar.span.ghost.ms` histogram\n", "");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("tasfar.span.ghost.ms"),
            std::string::npos);
}

TEST(RegistryConsistencyTest, FlightCodeRequiresDocRow) {
  const std::string src =
      "enum class FlightCode : uint8_t {\n"
      "  kSessionCreated = 0,\n"
      "  kAdaptFellBack = 5,\n"
      "};\n";
  const auto findings = RegistryFindings(src, "nothing here\n", "");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("serve.flight."), std::string::npos);
  const std::string doc =
      "| `serve.flight.session_created` | created |\n"
      "| `serve.flight.adapt_fell_back` | fell back |\n";
  EXPECT_TRUE(RegistryFindings(src, doc, "").empty());
}

TEST(RegistryConsistencyTest, OrphanedFlightCodeDocRowIsFlagged) {
  // serve.flight.* tokens are not tasfar.-prefixed, so they need their own
  // reverse sweep: a documented code with no enumerator is an orphan.
  const auto findings = RegistryFindings(
      "void F() {}\n", "the `serve.flight.ghost_event` code\n", "");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "docs/OBSERVABILITY.md");
  EXPECT_NE(findings[0].message.find("serve.flight.ghost_event"),
            std::string::npos);
}

TEST(FactsTest, ExtractsFlightCodesAsSnakeCaseNames) {
  const FileFacts facts = AnalyzeSource(
      "src/serve/telemetry.h",
      "enum class FlightCode : uint8_t {\n"
      "  kSessionCreated = 0,\n"
      "  kAdaptQueued = 2,\n"
      "  kBudgetRejected = 9,\n"
      "};\n"
      "// Usage elsewhere must not double-count:\n"
      "inline void F() { auto c = FlightCode::kAdaptQueued; (void)c; }\n");
  ASSERT_EQ(facts.flight_codes.size(), 3u);
  EXPECT_EQ(facts.flight_codes[0].name, "serve.flight.session_created");
  EXPECT_EQ(facts.flight_codes[1].name, "serve.flight.adapt_queued");
  EXPECT_EQ(facts.flight_codes[2].name, "serve.flight.budget_rejected");
  EXPECT_EQ(facts.flight_codes[0].line, 2);
}

// --- suppressions & facts extraction ----------------------------------------

TEST(FactsTest, ParsesAllowCommentsAndAliasAcks) {
  const FileFacts facts = AnalyzeSource(
      "src/core/fixture.cc",
      "// TASFAR_ANALYZE_ALLOW(seed-discipline): pinned eval stream\n"
      "void F() { Rng rng(seed ^ 3); }\n"
      "void G() { AddInto(s, t, &s); }  // aliased: in-place\n");
  ASSERT_EQ(facts.suppressions.size(), 1u);
  EXPECT_EQ(facts.suppressions[0].rule, "seed-discipline");
  EXPECT_EQ(facts.suppressions[0].reason, "pinned eval stream");
  EXPECT_EQ(facts.suppressions[0].line, 1);
  ASSERT_EQ(facts.aliased_ack_lines.size(), 1u);
  EXPECT_EQ(facts.aliased_ack_lines[0], 3);
  // The seed finding is still recorded raw; the engine marks it
  // suppressed. The acked aliasing call produces no finding at all.
  EXPECT_EQ(CountRule(facts, "seed-discipline"), 1);
  EXPECT_EQ(CountRule(facts, "into-aliasing"), 0);
}

TEST(FactsTest, ExtractsSymbols) {
  const FileFacts facts = AnalyzeSource(
      "src/core/fixture.cc",
      "void F() {\n"
      "  obs::Registry::Get().GetCounter(\"tasfar.a.count\");\n"
      "  obs::Registry::Get().GetHistogram(\"tasfar.b.ms\", 64);\n"
      "  obs::Registry::Get().GetCounter(\"tasfar.dyn.\" + n);\n"
      "  guard::CheckFinite(t, \"stage_nonfinite\");\n"
      "  TASFAR_TRACE_SPAN(\"stage\");\n"
      "  TASFAR_FAILPOINT(\"stage.poison\");\n"
      "}\n");
  ASSERT_EQ(facts.metrics.size(), 3u);
  EXPECT_EQ(facts.metrics[0].name, "tasfar.a.count");
  EXPECT_EQ(facts.metrics[1].name, "tasfar.b.ms");
  EXPECT_EQ(facts.metrics[2].name, "tasfar.guard.stage_nonfinite");
  ASSERT_EQ(facts.metric_prefixes.size(), 1u);
  EXPECT_EQ(facts.metric_prefixes[0], "tasfar.dyn.");
  ASSERT_EQ(facts.spans.size(), 1u);
  EXPECT_EQ(facts.spans[0].name, "stage");
  ASSERT_EQ(facts.failpoints.size(), 1u);
  EXPECT_EQ(facts.failpoints[0].name, "stage.poison");
}

TEST(FactsTest, SerializationRoundTrips) {
  const FileFacts facts = AnalyzeSource(
      "src/core/fixture.cc",
      "// TASFAR_ANALYZE_ALLOW(into-aliasing): fixture\n"
      "void F() { AddInto(s, t, &s); }\n"
      "void G() { TASFAR_FAILPOINT(\"x.poison\"); }\n");
  FileFacts parsed;
  ASSERT_TRUE(ParseFacts(SerializeFacts(facts), &parsed));
  EXPECT_EQ(parsed.path, facts.path);
  EXPECT_EQ(parsed.content_hash, facts.content_hash);
  EXPECT_EQ(parsed.findings, facts.findings);
  ASSERT_EQ(parsed.suppressions.size(), facts.suppressions.size());
  EXPECT_EQ(parsed.suppressions[0].rule, facts.suppressions[0].rule);
  EXPECT_EQ(parsed.suppressions[0].reason, facts.suppressions[0].reason);
  ASSERT_EQ(parsed.failpoints.size(), 1u);
  EXPECT_EQ(parsed.failpoints[0].name, "x.poison");
}

TEST(FactsTest, ParseRejectsWrongSchemaVersion) {
  const FileFacts facts = AnalyzeSource("src/a.cc", "void F() {}\n");
  std::string text = SerializeFacts(facts);
  const std::string tag = "v" + std::to_string(kFactsSchemaVersion);
  text.replace(text.find(tag), tag.size(), "v999");
  FileFacts parsed;
  EXPECT_FALSE(ParseFacts(text, &parsed));
}

// --- engine & incremental cache ---------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("analyze_engine_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "core");
    fs::create_directories(root_ / "docs");
    WriteFile("docs/MEMORY.md", "# Memory\n");
    WriteFile("docs/OBSERVABILITY.md",
              "# Observability\n`tasfar.sample.count`\n");
    WriteFile("docs/TESTING.md", "# Testing\n### Injection sites\n");
    WriteFile("src/core/sample.cc", Sample());
  }
  void TearDown() override { fs::remove_all(root_); }

  static std::string Sample() {
    return "void F() {\n"
           "  obs::Registry::Get().GetCounter(\"tasfar.sample.count\");\n"
           "  // TASFAR_ANALYZE_ALLOW(into-aliasing): fixture in-place\n"
           "  AddInto(sum, t, &sum);\n"
           "}\n";
  }

  void WriteFile(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ / rel, std::ios::binary | std::ios::trunc);
    out << content;
  }

  AnalyzeResult Run() {
    AnalyzeOptions options;
    options.repo_root = root_.string();
    options.cache_dir = (root_ / "cache").string();
    return AnalyzeRepo(options);
  }

  fs::path root_;
};

TEST_F(EngineTest, SecondRunHitsTheCacheWithIdenticalResults) {
  const AnalyzeResult cold = Run();
  ASSERT_FALSE(cold.io_error) << cold.error;
  EXPECT_EQ(cold.files_scanned, 1);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.cache_misses, 1);

  const AnalyzeResult warm = Run();
  ASSERT_FALSE(warm.io_error) << warm.error;
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.findings, cold.findings);
}

TEST_F(EngineTest, EditedFileMissesTheCache) {
  Run();
  WriteFile("src/core/sample.cc", Sample() + "\n// touched\n");
  const AnalyzeResult after = Run();
  EXPECT_EQ(after.cache_hits, 0);
  EXPECT_EQ(after.cache_misses, 1);
}

TEST_F(EngineTest, SuppressionsApplyAndCountsSplit) {
  const AnalyzeResult result = Run();
  ASSERT_FALSE(result.io_error) << result.error;
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.findings[0].rule, "into-aliasing");
  EXPECT_EQ(result.findings[0].suppress_reason, "fixture in-place");
  EXPECT_EQ(result.unsuppressed, 0);
  EXPECT_EQ(result.suppressed, 1);
}

TEST_F(EngineTest, UnsuppressedFindingIsCounted) {
  WriteFile("src/core/sample.cc",
            "void F() {\n"
            "  obs::Registry::Get().GetCounter(\"tasfar.sample.count\");\n"
            "  AddInto(sum, t, &sum);\n"
            "}\n");
  const AnalyzeResult result = Run();
  EXPECT_EQ(result.unsuppressed, 1);
  EXPECT_EQ(result.suppressed, 0);
}

// --- SARIF ------------------------------------------------------------------

TEST(SarifTest, EmitsResultsAndSuppressions) {
  Finding open;
  open.file = "src/a.cc";
  open.line = 3;
  open.rule = "into-aliasing";
  open.message = "dest aliases \"input\"";
  Finding closed = open;
  closed.line = 9;
  closed.suppressed = true;
  closed.suppress_reason = "documented in-place";
  const std::string sarif = ToSarif({open, closed});
  EXPECT_NE(sarif.find("\"tasfar-analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"into-aliasing\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("dest aliases \\\"input\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\"suppressions\""), std::string::npos);
  EXPECT_NE(sarif.find("documented in-place"), std::string::npos);
  // Exactly one result is suppressed.
  size_t count = 0;
  for (size_t at = sarif.find("\"suppressions\""); at != std::string::npos;
       at = sarif.find("\"suppressions\"", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(SarifTest, EmptyFindingsStillValidShape) {
  const std::string sarif = ToSarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
}

}  // namespace
}  // namespace tasfar::analyze
