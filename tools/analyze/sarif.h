#ifndef TASFAR_TOOLS_ANALYZE_SARIF_H_
#define TASFAR_TOOLS_ANALYZE_SARIF_H_

#include <string>
#include <vector>

#include "facts.h"

namespace tasfar::analyze {

/// Renders findings as a minimal SARIF 2.1.0 log (one run, tool
/// "tasfar-analyze", one result per finding). Suppressed findings are
/// emitted with a populated `suppressions` array so SARIF viewers show
/// them as reviewed rather than open. Hand-rolled JSON — the repo has no
/// JSON dependency and the subset we emit needs only string escaping.
std::string ToSarif(const std::vector<Finding>& findings);

}  // namespace tasfar::analyze

#endif  // TASFAR_TOOLS_ANALYZE_SARIF_H_
