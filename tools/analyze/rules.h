#ifndef TASFAR_TOOLS_ANALYZE_RULES_H_
#define TASFAR_TOOLS_ANALYZE_RULES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "facts.h"
#include "lexer.h"

namespace tasfar::analyze {

/// The five whole-program rules (docs/STATIC_ANALYSIS.md has the catalog
/// with rationale and examples; each check's header comment here is the
/// normative statement).
///
/// Per-file checks take the file's *code* tokens (comments removed) and
/// append findings. They all apply to files under src/ only — the engine
/// is responsible for scoping.

/// parallel-capture: a lambda passed to ParallelFor may not write a
/// by-reference captured variable through a plain assignment, increment,
/// or a subscript that does not involve the loop index. Writes through
/// members/methods (e.g. atomic .fetch_add, counter->Increment) and to
/// body-local variables are out of scope. The static face of the
/// disjoint-write rule in docs/THREADING.md.
void CheckParallelCapture(const std::string& path,
                          const std::vector<Token>& code,
                          std::vector<Finding>* findings);

/// into-aliasing: at a `*Into(...)` out-parameter kernel call site, the
/// destination (last argument, '&'/'*' stripped) may not textually equal
/// any input argument unless the line (or the line above) carries an
/// `// aliased:` acknowledgment. In-place use is legal for elementwise
/// kernels (docs/MEMORY.md §Kernels) but must be visibly acknowledged,
/// because for MatMulInto/TransposedInto/GatherRowsInto it is UB.
void CheckIntoAliasing(const std::string& path,
                       const std::vector<Token>& code,
                       const std::vector<int>& aliased_ack_lines,
                       std::vector<Finding>* findings);

/// workspace-escape: a tensor acquired from Workspace NewTensor/ZeroTensor
/// may not be stored into a member (trailing-underscore identifier) or a
/// static, and may not be returned directly as the unassigned call result
/// (NewTensor contents are uninitialized). Returning a *named* workspace
/// tensor after filling it is the documented ownership handoff
/// (docs/MEMORY.md §Workspaces) and is allowed.
void CheckWorkspaceEscape(const std::string& path,
                          const std::vector<Token>& code,
                          std::vector<Finding>* findings);

/// seed-discipline: a seed expression handed to Rng construction, Fork,
/// MixSeed, or ReseedStochastic may not combine a seed-named value with
/// ad-hoc arithmetic (+ - * ^ << >> |) at the argument's top level —
/// derive child seeds through MixSeed streams instead. src/util/rng.* is
/// exempt (it *is* the derivation).
void CheckSeedDiscipline(const std::string& path,
                         const std::vector<Token>& code,
                         std::vector<Finding>* findings);

/// Inline-backtick tokens harvested from one documentation file, plus the
/// failpoint site names declared in docs/TESTING.md's "Injection sites"
/// table (first column).
struct DocNames {
  /// token -> first line it appears on, per file.
  std::map<std::string, std::pair<std::string, int>> tokens;
  /// failpoint site -> (file, line), from the injection-site table only.
  std::map<std::string, std::pair<std::string, int>> failpoint_sites;
};

/// Harvests `...`-quoted tokens from markdown `content`. Tokens are kept
/// only when name-like: nonempty, chars in [a-z0-9._], at least one '.'.
/// Tokens containing '*' or '<' are templates/wildcards and are skipped.
/// When `content` contains an "Injection sites" section, backticked names
/// in the first column of its table rows are additionally recorded as
/// declared failpoint sites.
void ScanDocNames(const std::string& doc_path, const std::string& content,
                  DocNames* out);

/// registry-consistency: every exact metric name, trace-span literal, and
/// failpoint site in src/ must appear in the scanned docs, and every
/// doc-declared `tasfar.*` name / failpoint-table site must exist in src/.
/// Dynamic registration prefixes (e.g. "tasfar.failpoint.") cover doc
/// tokens under them, except "tasfar.span." — span names are statically
/// known, so tasfar.span.*.ms doc tokens must match a real span.
std::vector<Finding> CheckRegistryConsistency(
    const std::vector<FileFacts>& facts, const DocNames& docs);

/// All analyzer rule ids, for SARIF metadata and ALLOW validation.
const std::vector<std::string>& AnalyzerRuleIds();

}  // namespace tasfar::analyze

#endif  // TASFAR_TOOLS_ANALYZE_RULES_H_
