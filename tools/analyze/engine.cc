#include "engine.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lexer.h"
#include "obs/metrics.h"
#include "rules.h"
#include "util/thread_pool.h"

namespace tasfar::analyze {

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Cache entry file for a repo-relative source path: slashes become '_'
/// so every entry lives flat in the cache directory.
fs::path CacheEntry(const std::string& cache_dir,
                    const std::string& rel_path) {
  std::string name = rel_path;
  std::replace(name.begin(), name.end(), '/', '_');
  return fs::path(cache_dir) / (name + ".facts");
}

/// Sorted repo-relative paths of every src/**/*.{h,cc} file.
std::vector<std::string> DiscoverSources(const fs::path& root,
                                         std::string* error) {
  std::vector<std::string> rel;
  std::error_code ec;
  fs::recursive_directory_iterator it(root / "src", ec);
  if (ec) {
    *error = "cannot walk " + (root / "src").string() + ": " + ec.message();
    return rel;
  }
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    rel.push_back(
        fs::relative(entry.path(), root).generic_string());
  }
  std::sort(rel.begin(), rel.end());
  return rel;
}

/// Marks findings covered by a TASFAR_ANALYZE_ALLOW on the same line or
/// the line above. Registry findings anchored in docs cannot be
/// suppressed — the docs are the fix.
void ApplySuppressions(const std::vector<Suppression>& sups,
                       std::vector<Finding>* findings) {
  for (Finding& f : *findings) {
    for (const Suppression& s : sups) {
      if (s.rule != f.rule) continue;
      if (s.line == f.line || s.line == f.line - 1) {
        f.suppressed = true;
        f.suppress_reason = s.reason;
        break;
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& RegistryDocs() {
  static const std::vector<std::string> kDocs = {
      "docs/MEMORY.md",
      "docs/OBSERVABILITY.md",
      "docs/TESTING.md",
  };
  return kDocs;
}

AnalyzeResult AnalyzeRepo(const AnalyzeOptions& options) {
  AnalyzeResult result;
  const fs::path root(options.repo_root);

  std::string error;
  const std::vector<std::string> sources = DiscoverSources(root, &error);
  if (!error.empty()) {
    result.io_error = true;
    result.error = error;
    return result;
  }

  const bool use_cache = !options.cache_dir.empty();
  if (use_cache) {
    std::error_code ec;
    fs::create_directories(options.cache_dir, ec);
  }

  // Per-file scans run in parallel: each index touches only its own slot
  // and its own cache entry file.
  std::vector<FileFacts> facts(sources.size());
  std::vector<char> failed(sources.size(), 0);
  std::atomic<int> hits{0};
  std::atomic<int> misses{0};
  ParallelFor(0, sources.size(), 1, [&](size_t i) {
    std::string content;
    if (!ReadFile(root / sources[i], &content)) {
      failed[i] = 1;
      return;
    }
    const uint64_t hash = HashContent(content);
    if (use_cache) {
      std::string cached;
      FileFacts parsed;
      if (ReadFile(CacheEntry(options.cache_dir, sources[i]), &cached) &&
          ParseFacts(cached, &parsed) && parsed.content_hash == hash &&
          parsed.path == sources[i]) {
        facts[i] = std::move(parsed);
        hits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    facts[i] = AnalyzeSource(sources[i], content);
    misses.fetch_add(1, std::memory_order_relaxed);
    if (use_cache) {
      std::ofstream out(CacheEntry(options.cache_dir, sources[i]),
                        std::ios::binary | std::ios::trunc);
      out << SerializeFacts(facts[i]);
    }
  });
  for (size_t i = 0; i < sources.size(); ++i) {
    if (failed[i] != 0) {
      result.io_error = true;
      result.error = "cannot read " + sources[i];
      return result;
    }
  }
  result.files_scanned = static_cast<int>(sources.size());
  result.cache_hits = hits.load();
  result.cache_misses = misses.load();

  // Docs are read fresh every run: they are few, cheap to scan, and the
  // cross-check must see edits immediately.
  DocNames docs;
  for (const std::string& doc : RegistryDocs()) {
    std::string content;
    if (!ReadFile(root / doc, &content)) {
      result.io_error = true;
      result.error = "cannot read " + doc;
      return result;
    }
    ScanDocNames(doc, content, &docs);
  }

  std::vector<Finding> registry = CheckRegistryConsistency(facts, docs);

  std::vector<Finding> all;
  for (FileFacts& f : facts) {
    std::vector<Finding> file_findings = f.findings;  // cache holds raw
    ApplySuppressions(f.suppressions, &file_findings);
    all.insert(all.end(), file_findings.begin(), file_findings.end());
  }
  // Registry findings anchored in a src file can be suppressed there (a
  // doc-anchored finding has no comment grammar to carry the ALLOW).
  for (Finding& f : registry) {
    for (const FileFacts& ff : facts) {
      if (ff.path != f.file) continue;
      std::vector<Finding> one = {f};
      ApplySuppressions(ff.suppressions, &one);
      f = one[0];
      break;
    }
  }
  all.insert(all.end(), registry.begin(), registry.end());

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  for (const Finding& f : all) {
    if (f.suppressed) {
      ++result.suppressed;
    } else {
      ++result.unsuppressed;
    }
  }
  result.findings = std::move(all);
  result.facts = std::move(facts);

  obs::Registry& reg = obs::Registry::Get();
  reg.GetCounter("tasfar.analyze.files")->Increment(
      static_cast<uint64_t>(result.files_scanned));
  reg.GetCounter("tasfar.analyze.findings")->Increment(
      static_cast<uint64_t>(result.unsuppressed));
  reg.GetCounter("tasfar.analyze.suppressed")->Increment(
      static_cast<uint64_t>(result.suppressed));
  reg.GetCounter("tasfar.analyze.cache_hits")->Increment(
      static_cast<uint64_t>(result.cache_hits));
  reg.GetCounter("tasfar.analyze.cache_misses")->Increment(
      static_cast<uint64_t>(result.cache_misses));
  return result;
}

}  // namespace tasfar::analyze
