#ifndef TASFAR_TOOLS_ANALYZE_FACTS_H_
#define TASFAR_TOOLS_ANALYZE_FACTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tasfar::analyze {

/// One rule violation at a source location. `suppressed` is set by the
/// engine when a `// TASFAR_ANALYZE_ALLOW(rule): reason` comment covers
/// the finding's line (same line or the line above).
struct Finding {
  std::string file;  ///< Repo-relative path ("src/..." or "docs/...").
  int line = 0;      ///< 1-based; 0 for file-scoped findings.
  std::string rule;  ///< Stable rule id, e.g. "into-aliasing".
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;

  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule &&
           message == o.message && suppressed == o.suppressed &&
           suppress_reason == o.suppress_reason;
  }
};

/// A registered observable name (metric / trace span / failpoint site)
/// at its source line.
struct NameRef {
  std::string name;
  int line = 0;
};

/// One `// TASFAR_ANALYZE_ALLOW(rule): reason` comment.
struct Suppression {
  int line = 0;
  std::string rule;
  std::string reason;
};

/// Everything the whole-program passes need from one file, plus the
/// file's own per-file findings. This is the unit of the incremental
/// cache: facts are a pure function of (path, content), so a content-hash
/// hit can skip lexing and rule evaluation entirely.
struct FileFacts {
  std::string path;           ///< Repo-relative.
  uint64_t content_hash = 0;  ///< FNV-1a of the file bytes.

  std::vector<NameRef> metrics;     ///< Exact metric names registered.
  std::vector<std::string> metric_prefixes;  ///< Dynamic ("tasfar.guard.").
  std::vector<NameRef> spans;       ///< TASFAR_TRACE_SPAN literals.
  std::vector<NameRef> failpoints;  ///< TASFAR_FAILPOINT literals.
  /// Flight-recorder event codes from the `enum class FlightCode`
  /// definition, as their documented `serve.flight.<snake_case>` names.
  std::vector<NameRef> flight_codes;
  std::vector<Suppression> suppressions;
  std::vector<int> aliased_ack_lines;  ///< Lines with `// aliased:` acks.
  std::vector<Finding> findings;       ///< Per-file rule findings.
};

/// Lexes `source` and extracts symbols, suppressions, and per-file rule
/// findings (parallel-capture, into-aliasing, workspace-escape,
/// seed-discipline). The whole-program registry-consistency pass runs
/// later over the merged facts (see rules.h).
FileFacts AnalyzeSource(const std::string& repo_rel_path,
                        const std::string& source);

/// Cache (de)serialization. The format is line-oriented, tab-separated,
/// with backslash escaping for tabs/newlines/backslashes; SerializeFacts
/// round-trips through ParseFacts exactly.
/// Returns false when `text` is malformed or was written by a different
/// schema version (kFactsSchemaVersion below).
std::string SerializeFacts(const FileFacts& facts);
bool ParseFacts(const std::string& text, FileFacts* out);

/// Bumped whenever FileFacts, the serialization, or any rule's semantics
/// change, so stale caches self-invalidate. Mirrored in the checked-in
/// tools/analyze/CACHE_SCHEMA file that CI uses as its cache key.
constexpr int kFactsSchemaVersion = 2;

}  // namespace tasfar::analyze

#endif  // TASFAR_TOOLS_ANALYZE_FACTS_H_
