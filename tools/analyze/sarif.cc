#include "sarif.h"

#include <cstdio>
#include <sstream>

#include "rules.h"

namespace tasfar::analyze {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"tasfar-analyze\","
         " \"rules\": [";
  bool first = true;
  for (const std::string& id : AnalyzerRuleIds()) {
    if (!first) out << ", ";
    first = false;
    out << "{\"id\": \"" << JsonEscape(id) << "\"}";
  }
  out << "]}},\n"
      << "    \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "\n      {\"ruleId\": \"" << JsonEscape(f.rule) << "\","
        << " \"level\": \"error\","
        << " \"message\": {\"text\": \"" << JsonEscape(f.message) << "\"},"
        << " \"locations\": [{\"physicalLocation\":"
        << " {\"artifactLocation\": {\"uri\": \"" << JsonEscape(f.file)
        << "\"}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
        << "}}}]";
    if (f.suppressed) {
      out << ", \"suppressions\": [{\"kind\": \"inSource\","
          << " \"justification\": \"" << JsonEscape(f.suppress_reason)
          << "\"}]";
    }
    out << "}";
  }
  if (!findings.empty()) out << "\n    ";
  out << "]\n"
      << "  }]\n"
      << "}\n";
  return out.str();
}

}  // namespace tasfar::analyze
