#include "lexer.h"

#include <algorithm>
#include <cctype>

namespace tasfar::analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character punctuators, longest first so the greedy match below
/// picks "<<=" over "<<" over "<".
constexpr const char* kMultiPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  "##",
};

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> toks;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;

  auto push = [&](TokKind kind, std::string text, size_t offset,
                  size_t length, int tok_line) {
    toks.push_back({kind, std::move(text), tok_line, offset, length});
  };
  auto count_lines = [&](size_t from, size_t to) {
    line += static_cast<int>(std::count(
        source.begin() + static_cast<std::ptrdiff_t>(from),
        source.begin() + static_cast<std::ptrdiff_t>(to), '\n'));
  };

  while (i < n) {
    const char c = source[i];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (c == '\n') ++line;
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      push(TokKind::kComment, source.substr(i, end - i), i, end - i, line);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t end = source.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      push(TokKind::kComment, source.substr(i, end - i), i, end - i, line);
      count_lines(i, end);
      i = end;
      continue;
    }
    // Raw string literal: R"delim( ... )delim". Only the bare R prefix is
    // recognized (matching the historical lint stripper); the repo style
    // never uses encoding-prefixed raw strings.
    if (c == 'R' && i + 1 < n && source[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(source[i - 1]))) {
      size_t open = source.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string delim = source.substr(i + 2, open - (i + 2));
        size_t close = source.find(")" + delim + "\"", open + 1);
        size_t end = (close == std::string::npos)
                         ? n
                         : close + delim.size() + 2;
        const size_t content_begin = open + 1;
        const size_t content_end = (close == std::string::npos) ? n : close;
        push(TokKind::kString,
             source.substr(content_begin, content_end - content_begin), i,
             end - i, line);
        count_lines(i, end);
        i = end;
        continue;
      }
      // "R" with no parenthesis ahead: fall through as an identifier.
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      size_t j = i + 1;
      while (j < n && source[j] != c) {
        j += (source[j] == '\\') ? 2 : 1;
      }
      const size_t end = (j < n) ? j + 1 : n;
      const size_t content_end = (j < n) ? j : n;
      push(c == '"' ? TokKind::kString : TokKind::kChar,
           source.substr(i + 1, content_end - (i + 1)), i, end - i, line);
      count_lines(i, end);
      i = end;
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(source[j])) ++j;
      push(TokKind::kIdent, source.substr(i, j - i), i, j - i, line);
      i = j;
      continue;
    }
    // pp-number: digit, or '.' followed by digit. Consumes alnum, '_',
    // '\'', '.', and a sign immediately after an exponent marker.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(source[i + 1]))) {
      size_t j = i + 1;
      while (j < n) {
        const char d = source[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                    source[j - 1] == 'p' || source[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      push(TokKind::kNumber, source.substr(i, j - i), i, j - i, line);
      i = j;
      continue;
    }
    // Punctuator: greedy multi-char first.
    {
      size_t len = 1;
      for (const char* mp : kMultiPuncts) {
        const size_t mlen = std::char_traits<char>::length(mp);
        if (source.compare(i, mlen, mp) == 0) {
          len = mlen;
          break;
        }
      }
      push(TokKind::kPunct, source.substr(i, len), i, len, line);
      i += len;
    }
  }
  return toks;
}

std::vector<Token> CodeTokens(const std::vector<Token>& tokens) {
  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment) code.push_back(t);
  }
  return code;
}

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  for (const Token& t : Lex(source)) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kString &&
        t.kind != TokKind::kChar) {
      continue;
    }
    const size_t end = std::min(t.offset + t.length, out.size());
    for (size_t k = t.offset; k < end; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  }
  return out;
}

bool IsIdent(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdent && tok.text == text;
}

bool IsPunct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

size_t MatchingClose(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& p = toks[i].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

uint64_t HashContent(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tasfar::analyze
