#include "facts.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "lexer.h"
#include "rules.h"

namespace tasfar::analyze {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Parses "TASFAR_ANALYZE_ALLOW(rule): reason" out of a comment token.
/// Returns false when the comment has no ALLOW marker.
bool ParseAllow(const Token& comment, Suppression* out) {
  static const std::string kMarker = "TASFAR_ANALYZE_ALLOW(";
  const size_t at = comment.text.find(kMarker);
  if (at == std::string::npos) return false;
  const size_t rule_begin = at + kMarker.size();
  const size_t rule_end = comment.text.find(')', rule_begin);
  if (rule_end == std::string::npos) return false;
  out->line = comment.line;
  out->rule = Trim(comment.text.substr(rule_begin, rule_end - rule_begin));
  out->reason.clear();
  const size_t colon = comment.text.find(':', rule_end);
  if (colon != std::string::npos) {
    out->reason = Trim(comment.text.substr(colon + 1));
  }
  return true;
}

/// True when the code token at `i` is a call head: an identifier named
/// `name` directly followed by "(". Skips over a preceding "::"/"." /"->"
/// qualification transparently (the head match is on the last name).
bool IsCallHead(const std::vector<Token>& code, size_t i, const char* name) {
  return i + 1 < code.size() && IsIdent(code[i], name) &&
         IsPunct(code[i + 1], "(");
}

/// First string literal among the call's top-level arguments, or nullptr.
const Token* FirstTopLevelString(const std::vector<Token>& code, size_t open,
                                 size_t close) {
  int depth = 0;
  for (size_t i = open; i <= close && i < code.size(); ++i) {
    if (code[i].kind == TokKind::kPunct) {
      const std::string& p = code[i].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") --depth;
      continue;
    }
    if (depth == 1 && code[i].kind == TokKind::kString) return &code[i];
  }
  return nullptr;
}

/// Extracts metric/span/failpoint registrations from the code tokens.
void ExtractSymbols(const std::vector<Token>& code, FileFacts* facts) {
  for (size_t i = 0; i < code.size(); ++i) {
    // Metric registry: GetCounter/GetGauge/GetHistogram("exact.name", ...)
    // with a literal first argument registers an exact name. A computed
    // first argument (string concatenation) registers a dynamic prefix:
    // the first literal in the call that ends in '.' (e.g.
    // "tasfar.span." + name + ".ms" in src/obs/trace.h).
    const bool metric_head = IsCallHead(code, i, "GetCounter") ||
                             IsCallHead(code, i, "GetGauge") ||
                             IsCallHead(code, i, "GetHistogram");
    if (metric_head) {
      const size_t open = i + 1;
      const size_t close = MatchingClose(code, open);
      const bool exact_name =
          open + 2 < code.size() && open + 2 <= close &&
          code[open + 1].kind == TokKind::kString &&
          (open + 2 == close || IsPunct(code[open + 2], ","));
      if (exact_name) {
        facts->metrics.push_back({code[open + 1].text, code[open + 1].line});
      } else if (const Token* lit = FirstTopLevelString(code, open, close)) {
        if (!lit->text.empty() && lit->text.back() == '.') {
          facts->metric_prefixes.push_back(lit->text);
        }
      }
      continue;
    }
    // Tensor guards register "tasfar.guard.<site>" dynamically; the site
    // string at the call site is the stable name, so record the full
    // metric here to keep the docs cross-check exact.
    if (IsCallHead(code, i, "CheckFinite") ||
        IsCallHead(code, i, "CheckFiniteValue")) {
      const size_t open = i + 1;
      const size_t close = MatchingClose(code, open);
      if (const Token* lit = FirstTopLevelString(code, open, close)) {
        facts->metrics.push_back(
            {"tasfar.guard." + lit->text, lit->line});
      }
      continue;
    }
    if (IsCallHead(code, i, "TASFAR_TRACE_SPAN")) {
      const size_t open = i + 1;
      const size_t close = MatchingClose(code, open);
      if (const Token* lit = FirstTopLevelString(code, open, close)) {
        facts->spans.push_back({lit->text, lit->line});
      }
      continue;
    }
    if (IsCallHead(code, i, "TASFAR_FAILPOINT")) {
      const size_t open = i + 1;
      const size_t close = MatchingClose(code, open);
      if (const Token* lit = FirstTopLevelString(code, open, close)) {
        facts->failpoints.push_back({lit->text, lit->line});
      }
      continue;
    }
    // Flight-recorder codes: the `enum class FlightCode` definition is the
    // registration site; each enumerator is documented (and cross-checked)
    // as `serve.flight.<snake_case>` in docs/OBSERVABILITY.md.
    if (IsIdent(code[i], "enum") && i + 2 < code.size() &&
        IsIdent(code[i + 1], "class") && IsIdent(code[i + 2], "FlightCode")) {
      size_t j = i + 3;
      while (j < code.size() && !IsPunct(code[j], "{")) ++j;
      const size_t close = MatchingClose(code, j);
      int depth = 0;
      for (size_t k = j; k <= close && k < code.size(); ++k) {
        if (code[k].kind == TokKind::kPunct) {
          const std::string& p = code[k].text;
          if (p == "(" || p == "[" || p == "{") ++depth;
          if (p == ")" || p == "]" || p == "}") --depth;
          continue;
        }
        if (depth != 1 || code[k].kind != TokKind::kIdent) continue;
        const std::string& id = code[k].text;
        if (id.size() < 2 || id[0] != 'k' ||
            !(id[1] >= 'A' && id[1] <= 'Z')) {
          continue;
        }
        std::string snake;
        for (size_t c = 1; c < id.size(); ++c) {
          if (id[c] >= 'A' && id[c] <= 'Z') {
            if (c > 1) snake += '_';
            snake += static_cast<char>(id[c] - 'A' + 'a');
          } else {
            snake += id[c];
          }
        }
        facts->flight_codes.push_back(
            {"serve.flight." + snake, code[k].line});
      }
      i = close;
      continue;
    }
  }
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '\t': *out += "\\t"; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

bool SplitEscaped(const std::string& line, std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\') {
      if (i + 1 >= line.size()) return false;
      const char e = line[++i];
      if (e == '\\') cur += '\\';
      else if (e == 't') cur += '\t';
      else if (e == 'n') cur += '\n';
      else return false;
    } else if (c == '\t') {
      fields->push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields->push_back(cur);
  return true;
}

}  // namespace

FileFacts AnalyzeSource(const std::string& repo_rel_path,
                        const std::string& source) {
  FileFacts facts;
  facts.path = repo_rel_path;
  facts.content_hash = HashContent(source);

  const std::vector<Token> tokens = Lex(source);
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment) continue;
    Suppression sup;
    if (ParseAllow(t, &sup)) facts.suppressions.push_back(sup);
    if (t.text.find("aliased:") != std::string::npos) {
      facts.aliased_ack_lines.push_back(t.line);
    }
  }

  const std::vector<Token> code = CodeTokens(tokens);
  ExtractSymbols(code, &facts);

  CheckParallelCapture(repo_rel_path, code, &facts.findings);
  CheckIntoAliasing(repo_rel_path, code, facts.aliased_ack_lines,
                    &facts.findings);
  CheckWorkspaceEscape(repo_rel_path, code, &facts.findings);
  CheckSeedDiscipline(repo_rel_path, code, &facts.findings);
  return facts;
}

std::string SerializeFacts(const FileFacts& facts) {
  std::ostringstream out;
  out << "tasfar-analyze-facts\tv" << kFactsSchemaVersion << "\n";
  out << "path\t";
  {
    std::string esc;
    AppendEscaped(facts.path, &esc);
    out << esc << "\n";
  }
  out << "hash\t" << facts.content_hash << "\n";
  auto emit_refs = [&](const char* tag, const std::vector<NameRef>& refs) {
    for (const NameRef& r : refs) {
      std::string esc;
      AppendEscaped(r.name, &esc);
      out << tag << "\t" << r.line << "\t" << esc << "\n";
    }
  };
  emit_refs("metric", facts.metrics);
  for (const std::string& p : facts.metric_prefixes) {
    std::string esc;
    AppendEscaped(p, &esc);
    out << "metric_prefix\t" << esc << "\n";
  }
  emit_refs("span", facts.spans);
  emit_refs("failpoint", facts.failpoints);
  emit_refs("flight", facts.flight_codes);
  for (const Suppression& s : facts.suppressions) {
    std::string rule;
    std::string reason;
    AppendEscaped(s.rule, &rule);
    AppendEscaped(s.reason, &reason);
    out << "allow\t" << s.line << "\t" << rule << "\t" << reason << "\n";
  }
  for (int line : facts.aliased_ack_lines) {
    out << "aliased_ack\t" << line << "\n";
  }
  for (const Finding& f : facts.findings) {
    std::string rule;
    std::string msg;
    std::string reason;
    AppendEscaped(f.rule, &rule);
    AppendEscaped(f.message, &msg);
    AppendEscaped(f.suppress_reason, &reason);
    out << "finding\t" << f.line << "\t" << rule << "\t"
        << (f.suppressed ? 1 : 0) << "\t" << msg << "\t" << reason << "\n";
  }
  return out.str();
}

bool ParseFacts(const std::string& text, FileFacts* out) {
  *out = FileFacts{};
  std::istringstream in(text);
  std::string line;
  bool have_header = false;
  std::vector<std::string> f;
  while (std::getline(in, line)) {
    if (!SplitEscaped(line, &f) || f.empty()) return false;
    if (!have_header) {
      if (f.size() != 2 || f[0] != "tasfar-analyze-facts" ||
          f[1] != "v" + std::to_string(kFactsSchemaVersion)) {
        return false;
      }
      have_header = true;
      continue;
    }
    const std::string& tag = f[0];
    if (tag == "path" && f.size() == 2) {
      out->path = f[1];
    } else if (tag == "hash" && f.size() == 2) {
      out->content_hash = std::strtoull(f[1].c_str(), nullptr, 10);
    } else if (tag == "metric" && f.size() == 3) {
      out->metrics.push_back({f[2], std::atoi(f[1].c_str())});
    } else if (tag == "metric_prefix" && f.size() == 2) {
      out->metric_prefixes.push_back(f[1]);
    } else if (tag == "span" && f.size() == 3) {
      out->spans.push_back({f[2], std::atoi(f[1].c_str())});
    } else if (tag == "failpoint" && f.size() == 3) {
      out->failpoints.push_back({f[2], std::atoi(f[1].c_str())});
    } else if (tag == "flight" && f.size() == 3) {
      out->flight_codes.push_back({f[2], std::atoi(f[1].c_str())});
    } else if (tag == "allow" && f.size() == 4) {
      out->suppressions.push_back({std::atoi(f[1].c_str()), f[2], f[3]});
    } else if (tag == "aliased_ack" && f.size() == 2) {
      out->aliased_ack_lines.push_back(std::atoi(f[1].c_str()));
    } else if (tag == "finding" && f.size() == 6) {
      Finding fd;
      fd.file = out->path;
      fd.line = std::atoi(f[1].c_str());
      fd.rule = f[2];
      fd.suppressed = f[3] == "1";
      fd.message = f[4];
      fd.suppress_reason = f[5];
      out->findings.push_back(fd);
    } else {
      return false;
    }
  }
  return have_header;
}

}  // namespace tasfar::analyze
