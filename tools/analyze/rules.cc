#include "rules.h"

#include <algorithm>
#include <cctype>

namespace tasfar::analyze {

namespace {

Finding Make(const std::string& file, int line, const char* rule,
             std::string message) {
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  return f;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool IsAssignOp(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=", "*=",  "/=",  "%=",
      "&=", "|=", "^=", "<<=", ">>=",
  };
  return kOps.count(t.text) != 0;
}

/// Renders the argument tokens [begin, end) as one comparison key. Tokens
/// are concatenated without separators, so `passes [ s ]` and `passes[s]`
/// agree regardless of original spacing.
std::string ArgKey(const std::vector<Token>& code, size_t begin, size_t end) {
  std::string key;
  for (size_t i = begin; i < end; ++i) key += code[i].text;
  return key;
}

/// Splits the top-level (depth-1) comma-separated arguments of the call
/// whose "(" is at `open` and ")" at `close`. Returns [begin, end) token
/// ranges.
std::vector<std::pair<size_t, size_t>> SplitArgs(
    const std::vector<Token>& code, size_t open, size_t close) {
  std::vector<std::pair<size_t, size_t>> args;
  if (close <= open + 1) return args;
  int depth = 0;
  size_t arg_begin = open + 1;
  for (size_t i = open; i <= close; ++i) {
    if (code[i].kind != TokKind::kPunct) continue;
    const std::string& p = code[i].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") --depth;
    if ((depth == 1 && p == ",") || (depth == 0 && i == close)) {
      args.emplace_back(arg_begin, i);
      arg_begin = i + 1;
    }
  }
  return args;
}

/// --- parallel-capture ------------------------------------------------

struct Lambda {
  bool default_ref = false;
  std::set<std::string> ref_caps;
  std::set<std::string> val_caps;
  std::string loop_var;
  std::set<std::string> locals;
  size_t body_open = 0;
  size_t body_close = 0;
};

/// Parses the lambda whose capture-intro "[" is at `intro`. Returns false
/// when no body is found (not actually a lambda).
bool ParseLambda(const std::vector<Token>& code, size_t intro, Lambda* out) {
  const size_t cap_close = MatchingClose(code, intro);
  if (cap_close >= code.size()) return false;
  for (size_t k = intro + 1; k < cap_close;) {
    if (IsPunct(code[k], "&")) {
      if (k + 1 < cap_close && code[k + 1].kind == TokKind::kIdent) {
        out->ref_caps.insert(code[k + 1].text);
        k += 2;
      } else {
        out->default_ref = true;
        ++k;
      }
    } else if (code[k].kind == TokKind::kIdent) {
      out->val_caps.insert(code[k].text);
      ++k;
    } else {
      ++k;
    }
    // Skip an init-capture's expression up to the next top-level comma.
    if (k < cap_close && IsPunct(code[k], "=")) {
      int depth = 0;
      while (k < cap_close) {
        if (code[k].kind == TokKind::kPunct) {
          const std::string& p = code[k].text;
          if (p == "(" || p == "[" || p == "{") ++depth;
          if (p == ")" || p == "]" || p == "}") --depth;
          if (depth == 0 && p == ",") break;
        }
        ++k;
      }
    }
  }
  size_t p = cap_close + 1;
  if (p < code.size() && IsPunct(code[p], "(")) {
    const size_t params_close = MatchingClose(code, p);
    for (size_t q = p + 1; q < params_close && q < code.size(); ++q) {
      if (code[q].kind == TokKind::kIdent) {
        out->locals.insert(code[q].text);
        out->loop_var = code[q].text;
      }
    }
    p = params_close + 1;
  }
  while (p < code.size() && !IsPunct(code[p], "{")) ++p;
  if (p >= code.size()) return false;
  out->body_open = p;
  out->body_close = MatchingClose(code, p);
  // Body-local declarations: an identifier whose previous token reads as
  // the tail of a declarator (type name, ">", "*", "&", "&&"). Over-
  // collecting (e.g. `a & b`) only makes the rule more permissive.
  for (size_t k = out->body_open + 1; k < out->body_close; ++k) {
    if (code[k].kind != TokKind::kIdent) continue;
    const Token& prev = code[k - 1];
    if (prev.kind == TokKind::kIdent || IsPunct(prev, ">") ||
        IsPunct(prev, "*") || IsPunct(prev, "&") || IsPunct(prev, "&&")) {
      out->locals.insert(code[k].text);
    }
  }
  return true;
}

void CheckLambdaWrites(const std::string& path,
                       const std::vector<Token>& code, const Lambda& lam,
                       std::vector<Finding>* findings) {
  auto is_shared = [&](const std::string& name) {
    if (lam.locals.count(name) != 0) return false;
    if (lam.ref_caps.count(name) != 0) return true;
    return lam.default_ref && lam.val_caps.count(name) == 0;
  };
  for (size_t k = lam.body_open + 1; k < lam.body_close; ++k) {
    if (code[k].kind != TokKind::kIdent) continue;
    const Token& prev = code[k - 1];
    if (IsPunct(prev, ".") || IsPunct(prev, "->") || IsPunct(prev, "::")) {
      continue;  // member/qualified access of something else
    }
    const std::string& name = code[k].text;
    if (!is_shared(name)) continue;
    // Prefix increment/decrement.
    if (IsPunct(prev, "++") || IsPunct(prev, "--")) {
      findings->push_back(Make(
          path, code[k].line, "parallel-capture",
          "ParallelFor body mutates by-reference captured `" + name +
              "` (" + prev.text + "); shared writes must be per-index"));
      continue;
    }
    if (k + 1 >= lam.body_close) continue;
    // Chained subscripts: X[a][b]...
    size_t after = k + 1;
    bool subscripted = false;
    bool uses_loop_var = false;
    while (after < lam.body_close && IsPunct(code[after], "[")) {
      subscripted = true;
      const size_t sub_close = MatchingClose(code, after);
      for (size_t m = after + 1; m < sub_close; ++m) {
        if (code[m].kind == TokKind::kIdent &&
            code[m].text == lam.loop_var) {
          uses_loop_var = true;
        }
      }
      after = sub_close + 1;
    }
    if (after >= lam.body_close) continue;
    const Token& nxt = code[after];
    if (subscripted) {
      if (IsAssignOp(nxt) && !uses_loop_var && !lam.loop_var.empty()) {
        findings->push_back(Make(
            path, code[k].line, "parallel-capture",
            "ParallelFor body writes `" + name +
                "[...]` without the loop index `" + lam.loop_var +
                "` in the subscript; writes must be disjoint per index"));
      }
    } else if (IsAssignOp(nxt) || IsPunct(nxt, "++") || IsPunct(nxt, "--")) {
      findings->push_back(Make(
          path, code[k].line, "parallel-capture",
          "ParallelFor body mutates by-reference captured `" + name +
              "` (" + nxt.text + "); shared writes must be per-index"));
    }
  }
}

/// --- workspace-escape ------------------------------------------------

bool IsMemberName(const std::string& name) {
  return !name.empty() && name.back() == '_';
}

/// Walks back from the NewTensor/ZeroTensor head over its qualifier chain
/// (`ws.`, `Workspace::ThreadLocal().`). Returns the index of the first
/// token *before* the chain, or 0.
size_t ChainStart(const std::vector<Token>& code, size_t head) {
  size_t b = head;
  while (b > 0) {
    const Token& t = code[b - 1];
    if (t.kind == TokKind::kIdent && t.text != "return") {
      --b;
      continue;
    }
    if (IsPunct(t, ".") || IsPunct(t, "->") || IsPunct(t, "::")) {
      --b;
      continue;
    }
    // Empty call in the chain, e.g. ThreadLocal().
    if (IsPunct(t, ")") && b >= 2 && IsPunct(code[b - 2], "(")) {
      b -= 2;
      continue;
    }
    break;
  }
  return b;
}

bool StatementHasStatic(const std::vector<Token>& code, size_t at) {
  for (size_t b = at; b > 0; --b) {
    const Token& t = code[b - 1];
    if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}")) break;
    if (IsIdent(t, "static")) return true;
  }
  return false;
}

/// --- seed-discipline -------------------------------------------------

bool IdentMentionsSeed(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower.find("seed") != std::string::npos;
}

bool IsBinaryMixOp(const std::vector<Token>& code, size_t i) {
  if (code[i].kind != TokKind::kPunct) return false;
  static const std::set<std::string> kOps = {"+", "-",  "*", "^",
                                             "<<", ">>", "|"};
  if (kOps.count(code[i].text) == 0) return false;
  if (i == 0) return false;
  const Token& prev = code[i - 1];
  return prev.kind == TokKind::kIdent || prev.kind == TokKind::kNumber ||
         IsPunct(prev, ")") || IsPunct(prev, "]");
}

}  // namespace

void CheckParallelCapture(const std::string& path,
                          const std::vector<Token>& code,
                          std::vector<Finding>* findings) {
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!IsIdent(code[i], "ParallelFor") || !IsPunct(code[i + 1], "(")) {
      continue;
    }
    const size_t call_open = i + 1;
    const size_t call_close = MatchingClose(code, call_open);
    for (size_t j = call_open + 1; j < call_close; ++j) {
      if (!IsPunct(code[j], "[")) continue;
      if (!IsPunct(code[j - 1], "(") && !IsPunct(code[j - 1], ",")) continue;
      Lambda lam;
      if (!ParseLambda(code, j, &lam)) continue;
      CheckLambdaWrites(path, code, lam, findings);
      j = lam.body_close;  // don't rescan inside the body
    }
  }
}

void CheckIntoAliasing(const std::string& path,
                       const std::vector<Token>& code,
                       const std::vector<int>& aliased_ack_lines,
                       std::vector<Finding>* findings) {
  auto acked = [&](int line) {
    return std::find(aliased_ack_lines.begin(), aliased_ack_lines.end(),
                     line) != aliased_ack_lines.end() ||
           std::find(aliased_ack_lines.begin(), aliased_ack_lines.end(),
                     line - 1) != aliased_ack_lines.end();
  };
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& head = code[i];
    if (head.kind != TokKind::kIdent || head.text.size() <= 4 ||
        !EndsWith(head.text, "Into") || !IsPunct(code[i + 1], "(")) {
      continue;
    }
    // A preceding identifier means this is a declaration/definition
    // (`void AddInto(...)`), not a call site.
    if (i > 0 && (code[i - 1].kind == TokKind::kIdent ||
                  IsPunct(code[i - 1], "*") || IsPunct(code[i - 1], "&"))) {
      continue;
    }
    const size_t open = i + 1;
    const size_t close = MatchingClose(code, open);
    const auto args = SplitArgs(code, open, close);
    if (args.size() < 2) continue;
    // Destination is the last argument, with address-of/deref stripped.
    size_t dest_begin = args.back().first;
    while (dest_begin < args.back().second &&
           (IsPunct(code[dest_begin], "&") || IsPunct(code[dest_begin], "*"))) {
      ++dest_begin;
    }
    const std::string dest = ArgKey(code, dest_begin, args.back().second);
    if (dest.empty()) continue;
    for (size_t a = 0; a + 1 < args.size(); ++a) {
      size_t in_begin = args[a].first;
      while (in_begin < args[a].second &&
             (IsPunct(code[in_begin], "&") || IsPunct(code[in_begin], "*"))) {
        ++in_begin;
      }
      if (ArgKey(code, in_begin, args[a].second) != dest) continue;
      if (!acked(head.line)) {
        findings->push_back(Make(
            path, head.line, "into-aliasing",
            "destination `" + dest + "` aliases an input of " + head.text +
                " without an `// aliased:` acknowledgment "
                "(docs/MEMORY.md, kernel aliasing rules)"));
      }
      break;
    }
  }
}

void CheckWorkspaceEscape(const std::string& path,
                          const std::vector<Token>& code,
                          std::vector<Finding>* findings) {
  // The workspace implementation itself delegates between NewTensor and
  // ZeroTensor; the rule is about *users* of the workspace.
  if (StartsWith(path, "src/tensor/workspace")) return;
  std::set<std::string> ws_locals;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if ((!IsIdent(code[i], "NewTensor") && !IsIdent(code[i], "ZeroTensor")) ||
        !IsPunct(code[i + 1], "(")) {
      continue;
    }
    const size_t b = ChainStart(code, i);
    if (b == 0) continue;
    const Token& before = code[b - 1];
    if (IsIdent(before, "return")) {
      findings->push_back(Make(
          path, code[i].line, "workspace-escape",
          "returns the result of " + code[i].text +
              " directly; name the tensor, fill it, then hand it off "
              "(docs/MEMORY.md, workspace contract)"));
      continue;
    }
    if (IsPunct(before, "=") && b >= 2 &&
        code[b - 2].kind == TokKind::kIdent) {
      const std::string& target = code[b - 2].text;
      if (IsMemberName(target)) {
        findings->push_back(Make(
            path, code[i].line, "workspace-escape",
            "stores a workspace tensor into member `" + target +
                "`; members outlive the workspace scope and pin the "
                "per-thread pool (docs/MEMORY.md)"));
      } else if (StatementHasStatic(code, b - 2)) {
        findings->push_back(Make(
            path, code[i].line, "workspace-escape",
            "stores a workspace tensor into static `" + target +
                "`; statics outlive every workspace scope"));
      } else {
        ws_locals.insert(target);
      }
    }
  }
  // Indirect member store: `member_ = local;` where `local` came from the
  // workspace earlier in this file.
  for (size_t k = 0; k + 3 < code.size(); ++k) {
    if (code[k].kind == TokKind::kIdent && IsMemberName(code[k].text) &&
        IsPunct(code[k + 1], "=") && code[k + 2].kind == TokKind::kIdent &&
        ws_locals.count(code[k + 2].text) != 0 && IsPunct(code[k + 3], ";")) {
      findings->push_back(Make(
          path, code[k].line, "workspace-escape",
          "stores workspace tensor `" + code[k + 2].text +
              "` into member `" + code[k].text +
              "`; members outlive the workspace scope (docs/MEMORY.md)"));
    }
  }
}

void CheckSeedDiscipline(const std::string& path,
                         const std::vector<Token>& code,
                         std::vector<Finding>* findings) {
  if (StartsWith(path, "src/util/rng")) return;  // the derivation itself
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& head = code[i];
    if (head.kind != TokKind::kIdent) continue;
    const bool seed_head = head.text == "Rng" || head.text == "Fork" ||
                           head.text == "MixSeed" ||
                           head.text == "ReseedStochastic";
    if (!seed_head) continue;
    size_t open = 0;
    if (IsPunct(code[i + 1], "(")) {
      open = i + 1;
    } else if (head.text == "Rng" && i + 2 < code.size() &&
               code[i + 1].kind == TokKind::kIdent &&
               IsPunct(code[i + 2], "(")) {
      open = i + 2;  // declaration form: Rng rng(expr);
    } else {
      continue;
    }
    const size_t close = MatchingClose(code, open);
    for (const auto& arg : SplitArgs(code, open, close)) {
      bool has_op = false;
      bool has_seed = false;
      int depth = 0;
      for (size_t k = arg.first; k < arg.second; ++k) {
        if (code[k].kind == TokKind::kPunct) {
          const std::string& p = code[k].text;
          if (p == "(" || p == "[" || p == "{") ++depth;
          if (p == ")" || p == "]" || p == "}") --depth;
        }
        if (depth != 0) continue;
        if (IsBinaryMixOp(code, k)) has_op = true;
        if (code[k].kind == TokKind::kIdent && IdentMentionsSeed(code[k].text)) {
          has_seed = true;
        }
      }
      if (has_op && has_seed) {
        findings->push_back(Make(
            path, head.line, "seed-discipline",
            "ad-hoc seed arithmetic in " + head.text +
                "(...); derive child seeds with MixSeed(seed, stream) so "
                "streams stay disjoint (docs/TESTING.md, rng discipline)"));
        break;  // one finding per call
      }
    }
  }
}

void ScanDocNames(const std::string& doc_path, const std::string& content,
                  DocNames* out) {
  auto name_like = [](const std::string& tok) {
    if (tok.empty()) return false;
    bool has_dot = false;
    for (char c : tok) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '.' || c == '_';
      if (!ok) return false;
      if (c == '.') has_dot = true;
    }
    return has_dot;
  };
  bool in_sites = false;
  int ln = 0;
  size_t pos = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++ln;
    if (!line.empty() && line[0] == '#') {
      in_sites = line.find("Injection sites") != std::string::npos;
    }
    const size_t first_bar = line.find('|');
    const size_t second_bar =
        first_bar == std::string::npos ? std::string::npos
                                       : line.find('|', first_bar + 1);
    size_t at = 0;
    while (true) {
      const size_t b = line.find('`', at);
      if (b == std::string::npos) break;
      const size_t e = line.find('`', b + 1);
      if (e == std::string::npos) break;
      const std::string tok = line.substr(b + 1, e - b - 1);
      at = e + 1;
      if (!name_like(tok)) continue;
      out->tokens.emplace(tok, std::make_pair(doc_path, ln));
      if (in_sites && first_bar != std::string::npos &&
          second_bar != std::string::npos && b > first_bar && b < second_bar) {
        out->failpoint_sites.emplace(tok, std::make_pair(doc_path, ln));
      }
    }
    if (eol == content.size()) break;
  }
}

std::vector<Finding> CheckRegistryConsistency(
    const std::vector<FileFacts>& facts, const DocNames& docs) {
  std::vector<Finding> findings;
  // First registration site per name, for stable finding locations.
  std::map<std::string, std::pair<std::string, int>> metrics;
  std::map<std::string, std::pair<std::string, int>> spans;
  std::map<std::string, std::pair<std::string, int>> failpoints;
  std::map<std::string, std::pair<std::string, int>> flight_codes;
  std::set<std::string> prefixes;
  for (const FileFacts& f : facts) {
    for (const NameRef& m : f.metrics) {
      metrics.emplace(m.name, std::make_pair(f.path, m.line));
    }
    for (const NameRef& s : f.spans) {
      spans.emplace(s.name, std::make_pair(f.path, s.line));
    }
    for (const NameRef& p : f.failpoints) {
      failpoints.emplace(p.name, std::make_pair(f.path, p.line));
    }
    for (const NameRef& c : f.flight_codes) {
      flight_codes.emplace(c.name, std::make_pair(f.path, c.line));
    }
    for (const std::string& p : f.metric_prefixes) prefixes.insert(p);
  }

  for (const auto& [name, loc] : metrics) {
    if (docs.tokens.count(name) == 0) {
      findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                              "metric `" + name +
                                  "` is registered in src but documented "
                                  "nowhere (docs/OBSERVABILITY.md)"));
    }
  }
  for (const auto& [name, loc] : spans) {
    const std::string doc_form = "tasfar.span." + name + ".ms";
    if (docs.tokens.count(doc_form) == 0) {
      findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                              "trace span `" + name + "` has no `" +
                                  doc_form +
                                  "` entry in docs/OBSERVABILITY.md"));
    }
  }
  for (const auto& [name, loc] : failpoints) {
    if (docs.failpoint_sites.count(name) == 0) {
      findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                              "failpoint site `" + name +
                                  "` is missing from the injection-sites "
                                  "table in docs/TESTING.md"));
    }
  }
  for (const auto& [name, loc] : flight_codes) {
    if (docs.tokens.count(name) == 0) {
      findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                              "flight-recorder code `" + name +
                                  "` has no entry in the flight-recorder "
                                  "table in docs/OBSERVABILITY.md"));
    }
  }
  // Reverse direction for flight codes: they are not tasfar.-prefixed, so
  // the generic documented-name sweep below never sees them.
  for (const auto& [tok, loc] : docs.tokens) {
    if (!StartsWith(tok, "serve.flight.")) continue;
    if (flight_codes.count(tok) != 0) continue;
    findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                            "documented flight-recorder code `" + tok +
                                "` matches no FlightCode enumerator"));
  }

  for (const auto& [tok, loc] : docs.tokens) {
    if (!StartsWith(tok, "tasfar.")) continue;
    if (metrics.count(tok) != 0) continue;
    // Failpoint site names may be dotted and tasfar.-prefixed (the
    // injection-sites table backticks them); they are registrations too.
    if (failpoints.count(tok) != 0) continue;
    // tasfar.span.<name>.ms entries must match a real span: span names are
    // statically known, so the dynamic "tasfar.span." registration prefix
    // does not cover them.
    static const std::string kSpanPrefix = "tasfar.span.";
    if (StartsWith(tok, kSpanPrefix) && EndsWith(tok, ".ms")) {
      const std::string span = tok.substr(
          kSpanPrefix.size(), tok.size() - kSpanPrefix.size() - 3);
      if (spans.count(span) != 0) continue;
      findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                              "documented span metric `" + tok +
                                  "` matches no TASFAR_TRACE_SPAN in src"));
      continue;
    }
    bool covered = false;
    for (const std::string& p : prefixes) {
      if (p != kSpanPrefix && StartsWith(tok, p)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                            "documented name `" + tok +
                                "` has no registration in src"));
  }
  for (const auto& [site, loc] : docs.failpoint_sites) {
    if (failpoints.count(site) != 0) continue;
    findings.push_back(Make(loc.first, loc.second, "registry-consistency",
                            "injection-sites table lists `" + site +
                                "` but no TASFAR_FAILPOINT registers it"));
  }
  return findings;
}

const std::vector<std::string>& AnalyzerRuleIds() {
  static const std::vector<std::string> kIds = {
      "into-aliasing",    "parallel-capture", "registry-consistency",
      "seed-discipline",  "workspace-escape",
  };
  return kIds;
}

}  // namespace tasfar::analyze
