#ifndef TASFAR_TOOLS_ANALYZE_LEXER_H_
#define TASFAR_TOOLS_ANALYZE_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace tasfar::analyze {

/// A single C++ lexeme. The lexer is deliberately lightweight — no
/// preprocessing, no keyword table, no template disambiguation — but it is
/// exact about the four things every rule in tools/analyze and tools/lint
/// needs: token boundaries, token kinds, line numbers, and the raw extent
/// of comments/literals (so they can be blanked or searched separately
/// from code).
enum class TokKind {
  kIdent,    ///< Identifier or keyword: [A-Za-z_][A-Za-z0-9_]*.
  kNumber,   ///< pp-number: 0x5c0ffeeULL, 1e-9, 0.5, 1'000'000.
  kString,   ///< "..." or R"delim(...)delim"; text() is the *contents*.
  kChar,     ///< '...' character literal; text() is the contents.
  kPunct,    ///< Operator/punctuator, multi-char greedy ("::", "+=", ...).
  kComment,  ///< // or /* */; text() includes the comment markers.
};

struct Token {
  TokKind kind;
  std::string text;  ///< See TokKind for what this holds per kind.
  int line;          ///< 1-based line of the token's first character.
  size_t offset;     ///< Byte offset of the token's first character.
  size_t length;     ///< Raw byte extent in the source (quotes included).
};

/// Tokenizes C++ source. Comments are kept as kComment tokens so callers
/// that need them (suppression comments, `// aliased:` acknowledgments)
/// can scan them; code-only consumers filter them out (see CodeTokens).
/// Never fails: unterminated literals/comments extend to end of input,
/// bytes that fit no token class are skipped.
std::vector<Token> Lex(const std::string& source);

/// The tokens of `tokens` with comments removed — the view every
/// code-matching rule works on.
std::vector<Token> CodeTokens(const std::vector<Token>& tokens);

/// Replaces the contents of comments, string literals (including raw
/// strings), and character literals with spaces, preserving newlines so
/// that line numbers of the remaining code are unchanged. Built on Lex();
/// this is the single implementation behind tools/lint's historical
/// StripCommentsAndStrings.
std::string StripCommentsAndStrings(const std::string& source);

/// True when `tok` is an identifier with exactly the given text.
bool IsIdent(const Token& tok, const char* text);

/// True when `tok` is a punctuator with exactly the given text.
bool IsPunct(const Token& tok, const char* text);

/// Index of the punctuator that closes the group opened at `open` (which
/// must index a "(", "[", or "{" token in `toks`), honoring nesting of all
/// three bracket kinds. Returns toks.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& toks, size_t open);

/// FNV-1a 64-bit hash of a byte string — the content hash behind the
/// analyzer's incremental cache.
uint64_t HashContent(const std::string& bytes);

}  // namespace tasfar::analyze

#endif  // TASFAR_TOOLS_ANALYZE_LEXER_H_
