#ifndef TASFAR_TOOLS_ANALYZE_ENGINE_H_
#define TASFAR_TOOLS_ANALYZE_ENGINE_H_

#include <string>
#include <vector>

#include "facts.h"

namespace tasfar::analyze {

struct AnalyzeOptions {
  /// Repo root; `src/` and `docs/` are resolved under it.
  std::string repo_root;
  /// Incremental-cache directory; empty disables the cache. The engine
  /// creates it on demand; entries are one serialized FileFacts per file,
  /// keyed by path and validated by content hash + schema version.
  std::string cache_dir;
};

struct AnalyzeResult {
  /// All findings (suppressed ones included), sorted by file/line/rule.
  std::vector<Finding> findings;
  /// Per-file facts for every scanned source file, sorted by path.
  std::vector<FileFacts> facts;
  int files_scanned = 0;
  int cache_hits = 0;
  int cache_misses = 0;
  int unsuppressed = 0;
  int suppressed = 0;
  bool io_error = false;
  std::string error;
};

/// Runs the whole-program analysis: scans src/**/*.{h,cc} in parallel on
/// the global ThreadPool (per-file facts through the incremental cache),
/// re-reads docs/{OBSERVABILITY,TESTING,MEMORY}.md fresh, joins the facts
/// into the registry-consistency pass, applies TASFAR_ANALYZE_ALLOW
/// suppressions, and bumps the tasfar.analyze.* metrics.
AnalyzeResult AnalyzeRepo(const AnalyzeOptions& options);

/// The docs the registry-consistency pass reads, relative to the root.
const std::vector<std::string>& RegistryDocs();

}  // namespace tasfar::analyze

#endif  // TASFAR_TOOLS_ANALYZE_ENGINE_H_
